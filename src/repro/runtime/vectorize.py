"""Vectorizing kernel executor: NumPy evaluation of offload loop nests.

The closure interpreter executes every kernel one loop iteration at a
time — for the paper's O(N^2) kernels (clenergy's lattice x atom sweep)
this dominates suite wall time.  This module lowers ``target ... for``
loop nests to NumPy array expressions evaluated directly against device
storage, the standard escape hatch for data-parallel loops in Python
tree interpreters (compare Devito's lowering of stencil loop nests to
array expressions).

Four lowering strategies (phase 2)
----------------------------------

``straight``
    The PR 3 baseline: canonical loop headers, straight-line bodies,
    affine injective write subscripts with read==write subscripts on
    RW arrays, arbitrary gathers on read-only arrays, ``+``/``-``
    reductions replayed in exact sequential rounding via cumsum prefix
    scans, fmin/fmax and ternary min/max reduction patterns.

``collapse``
    Perfectly nested parallel loops flatten into one index space: each
    collapsed level contributes an index vector over the combined lane
    space, store injectivity is checked across the whole space with a
    mixed-radix dominance test, and reductions still accumulate in
    lexicographic (= sequential) order.

``masked``
    ``if`` bodies lower to compressed-lane execution: the guard's mask
    selects an *active lane subset* and every statement below evaluates
    only on those lanes — so division, overflow and gathers on the
    discarded lanes are never evaluated at all (the interpreter never
    evaluates them either).  Data-dependent scatter stores and
    lane-varying ("ragged") inner loop bounds execute under a deferred
    store buffer with launch-time uniqueness/overlap checks; a failed
    check rolls the launch back and falls to the next strategy.

``wavefront``
    Nests whose stores and loads *do* carry values between iterations
    (nw's anti-diagonals) replay the outer loop sequentially while each
    slice's inner iterations evaluate as one vector.  The dependence
    classifier of :mod:`repro.analysis.depend` proves, per launch, that
    no dependence connects two cells of one slice — cross-slice flow,
    anti and output dependences are honoured by slice order itself.
    Nests with unit-distance carries (hotspot's in-place stencil) are
    the degenerate case — one-lane slices — and execute through the
    sequential scalar replay engine of :mod:`repro.runtime.replay`,
    which is order-exact by construction.

Math calls (``sqrt``/``exp``/``fabs``/``log``/...) map to NumPy ufuncs
behind a libm-parity gate: functions whose IEEE results are specified
exactly (sqrt, fabs, fmin/fmax, fmod) vectorize unconditionally, the
rest are probed bit-for-bit against :mod:`math` on a corpus of
magnitudes once per process and drop to a per-lane libm loop when the
NumPy build rounds differently — never to the interpreter.

Anything no strategy can express falls back to the closure
interpreter; correctness never depends on the vectorizer.
``Interpreter(vectorize=False)`` (CLI ``--no-vectorize``) disables the
whole module.

Exactness
---------

Every strategy is bit-identical to the interpreted path, not just
close: element updates run per-lane-private (same IEEE operations in
the same order), integer ``/`` and ``%`` use C truncating semantics,
``+``/``-`` reductions replay the loop's sequential rounding through a
``cumsum`` prefix scan, masked statements evaluate only the lanes the
interpreter would execute, wavefront slices replay in exact sequential
order, and deferred scatter stores commit only after proving the
lane-major and statement-major execution orders agree (unique store
targets, no store/load overlap).  The step/tick ledger is charged
*synthetically*: each vector-executed statement charges the exact
number of ``Machine.tick`` calls the interpreted loop would have made
— masked statements charge only the active lane count — so
``kernel_time_s``, ``omp_get_wtime`` and the Fig. 5/6 metrics are
unchanged.  Charges land *before* the corresponding array expression
is evaluated, so the ``Machine.max_steps`` runaway-loop guard still
trips — without first allocating a runaway-sized index vector.
Strategies that can decline mid-launch (masked merges, scatter
commits) snapshot the written bindings and the step ledger first and
restore both before the next candidate runs.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..frontend import ast_nodes as A
from ..frontend.ctypes_ import ArrayType, QualType, StructType
from ..frontend.parser import EnumConstantDecl, fold_integer_constant
from ..analysis.bounds import find_indexing_var, step_of
from ..analysis.depend import WavefrontObligation
from .interp import SimulationError, _c_div, _c_mod
from .values import ArrayObject, Cell, Pointer, StructObject

__all__ = [
    "STRATEGY_RANK",
    "VectorCandidate",
    "compile_kernel_candidates",
    "try_vectorize",
]

#: Coverage ordering used by the suite artifact and ``suite-diff``:
#: higher rank = more specialized (faster) lowering.  ``interpreter``
#: is rank 0 so "lost coverage" and "strategy downgrade" are one test.
STRATEGY_RANK: dict[str, int] = {
    "interpreter": 0,
    "wavefront": 1,
    "masked": 2,
    "collapse": 3,
    "ufunc": 4,
    "straight": 5,
    "codegen": 6,
}


class _Ineligible(Exception):
    """Internal: the nest cannot be compiled by this strategy (reason)."""


class _RuntimeDecline(Exception):
    """Internal: a launch-time check failed mid-execution; the runner
    restores its snapshot and returns False so the caller can try the
    next candidate (ultimately the interpreter)."""


# ===========================================================================
# Small helpers
# ===========================================================================


def _strip(expr: A.Expr) -> A.Expr:
    while isinstance(expr, A.ParenExpr):
        expr = expr.inner
    return expr


def _stmts_of(body: A.Stmt | None) -> list[A.Stmt]:
    if body is None:
        return []
    if isinstance(body, A.CompoundStmt):
        return list(body.stmts)
    return [body]


def _unwrap_for(stmt: A.Stmt | None) -> A.Stmt | None:
    """Peel single-statement compounds down to the loop they wrap."""
    while isinstance(stmt, A.CompoundStmt) and len(stmt.stmts) == 1:
        stmt = stmt.stmts[0]
    return stmt


def _ref_names(expr: A.Expr | None) -> set[str]:
    if expr is None:
        return set()
    return {r.name for r in expr.walk_instances(A.DeclRefExpr)}


def _expr_equal(x: A.Expr, y: A.Expr) -> bool:
    """Structural equality of the restricted (side-effect-free) grammar."""
    x, y = _strip(x), _strip(y)
    fx = fold_integer_constant(x)
    if fx is not None:
        return fx == fold_integer_constant(y)
    if type(x) is not type(y):
        return False
    if isinstance(x, A.IntegerLiteral) or isinstance(x, A.FloatingLiteral) \
            or isinstance(x, A.CharacterLiteral):
        return x.value == y.value
    if isinstance(x, A.DeclRefExpr):
        if x.decl is not None and y.decl is not None:
            return x.decl.node_id == y.decl.node_id
        return x.name == y.name
    if isinstance(x, A.UnaryOperator):
        return x.op == y.op and _expr_equal(x.operand, y.operand)
    if isinstance(x, A.BinaryOperator):
        return (x.op == y.op and _expr_equal(x.lhs, y.lhs)
                and _expr_equal(x.rhs, y.rhs))
    if isinstance(x, A.ConditionalOperator):
        return (_expr_equal(x.cond, y.cond)
                and _expr_equal(x.true_expr, y.true_expr)
                and _expr_equal(x.false_expr, y.false_expr))
    if isinstance(x, A.ArraySubscriptExpr):
        return _expr_equal(x.base, y.base) and _expr_equal(x.index, y.index)
    if isinstance(x, A.MemberExpr):
        return (x.member == y.member and x.is_arrow == y.is_arrow
                and _expr_equal(x.base, y.base))
    return False


def _chain_equal(a: list[A.Expr], b: list[A.Expr]) -> bool:
    return len(a) == len(b) and all(_expr_equal(x, y) for x, y in zip(a, b))


# ===========================================================================
# Vector numeric semantics (mirroring the closure interpreter exactly)
# ===========================================================================


def _int_like(v: Any) -> bool:
    if isinstance(v, np.ndarray):
        # Object arrays only arise from the exact-integer escalation in
        # _grow_op, so they always hold Python ints.
        return v.dtype.kind in "buiO"
    return isinstance(v, (bool, int, np.integer))


#: Magnitude above which an int64 float approximation may have wrapped;
#: half of 2**63 leaves a 2x margin over float64 rounding error.
_INT_GUARD = float(2 ** 62)


def _grow_op(py_op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """``+``/``-``/``*`` with exact integer semantics.

    The interpreter computes every lane in unbounded Python ints; int64
    lanes would silently wrap past 2**63.  A float64 shadow of the
    result flags potential wraparound, and flagged ops are redone in
    object dtype (element-wise Python ints) — exact, like the
    interpreter, at object-array speed only in the rare kernels that
    actually overflow.
    """

    def fn(a: Any, b: Any) -> Any:
        result = py_op(a, b)
        if (
            _int_like(a)
            and _int_like(b)
            and (isinstance(a, np.ndarray) or isinstance(b, np.ndarray))
            and not (
                isinstance(result, np.ndarray) and result.dtype.kind == "O"
            )
        ):
            approx = py_op(
                np.asarray(a, dtype=np.float64),
                np.asarray(b, dtype=np.float64),
            )
            if np.any(np.abs(approx) > _INT_GUARD):
                return py_op(
                    np.asarray(a, dtype=object), np.asarray(b, dtype=object)
                )
        return result

    return fn


def _vec_div(a: Any, b: Any) -> Any:
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _c_div(a, b)
    if _int_like(a) and _int_like(b):
        if np.any(np.equal(b, 0)):
            raise SimulationError("integer division by zero")
        q = np.floor_divide(np.abs(a), np.abs(b))
        neg = np.not_equal(np.greater_equal(a, 0), np.greater_equal(b, 0))
        return np.where(neg, -q, q)
    if np.any(np.equal(b, 0)):
        # The interpreter computes per-lane in Python, where float
        # division by zero raises; matching that beats a silent inf.
        raise ZeroDivisionError("float division by zero")
    return a / b


def _vec_mod(a: Any, b: Any) -> Any:
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _c_mod(a, b)
    if _int_like(a) and _int_like(b):
        if np.any(np.equal(b, 0)):
            raise SimulationError("integer modulo by zero")
        return a - _vec_div(a, b) * b
    if np.any(np.equal(b, 0)):
        raise ValueError("math domain error")  # math.fmod(x, 0.0)
    return np.fmod(a, b)


def _cmp_fn(op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    def fn(a: Any, b: Any) -> Any:
        r = op(a, b)
        if isinstance(r, np.ndarray):
            return r.astype(np.int64)
        return int(r)

    return fn


def _as_int(v: Any) -> Any:
    if isinstance(v, np.ndarray):
        if v.dtype.kind == "f":
            return np.trunc(v).astype(np.int64)
        if v.dtype != np.int64 and v.dtype != object:
            return v.astype(np.int64)
        return v
    return int(v)


def _widen(v: Any) -> Any:
    """Array-load widening, mirroring the interpreter's ``.item()``.

    The closure interpreter converts every loaded element to a Python
    float (= float64) or unbounded int before computing, narrowing only
    when the value is stored back into array storage.  Vector loads
    must widen the same way, or float32 kernels would double-round
    (float32 ops lane-side vs float64-compute + one narrowing store
    interpreter-side) and diverge bitwise.
    """
    if isinstance(v, np.ndarray):
        if v.dtype.kind == "f" and v.dtype != np.float64:
            return v.astype(np.float64)
        if v.dtype.kind in "bui" and v.dtype != np.int64:
            return v.astype(np.int64)
        return v
    if isinstance(v, np.generic):
        return v.item()
    return v


def _int_op(op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    return lambda a, b: op(_as_int(a), _as_int(b))


_VEC_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _grow_op(lambda a, b: a + b),
    "-": _grow_op(lambda a, b: a - b),
    "*": _grow_op(lambda a, b: a * b),
    "/": _vec_div,
    "%": _vec_mod,
    "<": _cmp_fn(lambda a, b: a < b),
    ">": _cmp_fn(lambda a, b: a > b),
    "<=": _cmp_fn(lambda a, b: a <= b),
    ">=": _cmp_fn(lambda a, b: a >= b),
    "==": _cmp_fn(lambda a, b: np.equal(a, b)),
    "!=": _cmp_fn(lambda a, b: np.not_equal(a, b)),
    "&": _int_op(lambda a, b: a & b),
    "|": _int_op(lambda a, b: a | b),
    "^": _int_op(lambda a, b: a ^ b),
    "<<": _int_op(lambda a, b: a << b),
    ">>": _int_op(lambda a, b: a >> b),
}

_COMPOUND = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

_CMPS: dict[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "!=": lambda a, b: a != b,
}

_COND_FLIP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "!=": "!="}

_MINMAX_CALLS = {"fmin": "min", "fminf": "min", "fmax": "max", "fmaxf": "max"}


def _coercer(qt: QualType | None) -> Callable[[Any], Any]:
    """Store-side coercion matching the interpreter's ``_coerce_for``."""
    if qt is not None and qt.is_integer:
        return _as_int
    if qt is not None and qt.is_floating:
        def to_float(v: Any) -> Any:
            # Always float64, whatever the declared width: the
            # interpreter's ``float(v)`` coercion computes C-float
            # locals in double precision too.
            if isinstance(v, np.ndarray):
                return v if v.dtype == np.float64 else v.astype(np.float64)
            return float(v)

        return to_float
    return lambda v: v


def _broadcast(value: Any, lanes: int) -> np.ndarray:
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    return np.full(lanes, value)


def _as_lane_vec(value: Any, lanes: int) -> np.ndarray:
    """Per-lane int64 position vector (scatter targets, read logs)."""
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value if value.dtype == np.int64 else value.astype(np.int64)
    return np.full(lanes, int(value), dtype=np.int64)


def _as_value_vec(value: Any, lanes: int) -> np.ndarray:
    """Per-lane value vector for a deferred store buffer."""
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(lanes, value, dtype=arr.dtype)
    return arr


def _seq_sum(init: float, vec: np.ndarray) -> float:
    """Sequential-order float accumulation: ``((init+v0)+v1)+...``.

    ``cumsum`` computes every prefix, so each partial sum is rounded in
    loop order — bit-identical to the interpreted accumulation, unlike
    pairwise ``np.sum``.
    """
    buf = np.empty(vec.size + 1, dtype=np.float64)
    buf[0] = init
    buf[1:] = vec
    return float(buf.cumsum()[-1])


def _flat_index(vals: list[Any], shape: tuple[int, ...]) -> Any:
    """Row-major flattening, mirroring ``ArrayObject.flat_index``."""
    if len(vals) == 1:
        return vals[0]
    flat: Any = 0
    for k, v in enumerate(vals):
        stride = 1
        for d in shape[k + 1:]:
            stride *= d
        flat = flat + v * stride
    return flat


def _masked_merge(mask: np.ndarray, tv: Any, fv: Any) -> np.ndarray:
    """Join the two branch results of a lane-varying conditional.

    The interpreter keeps one Python value per lane, so a conditional
    whose branches yield an int on some lanes and a float on others
    would give later ``/``/``%`` operators per-lane C-vs-IEEE
    semantics no single dtype can express — those merges decline the
    launch instead of guessing.
    """
    ta, fa = np.asarray(tv), np.asarray(fv)
    if ta.dtype == object or fa.dtype == object:
        dtype: Any = object
    else:
        tk, fk = ta.dtype.kind, fa.dtype.kind
        if tk in "bui" and fk in "bui":
            dtype = np.int64
        elif tk == "f" and fk == "f":
            dtype = np.float64
        else:
            raise _RuntimeDecline(
                "mixed int/float branches in a lane-varying conditional"
            )
    out = np.empty(mask.size, dtype=dtype)
    out[mask] = tv
    out[~mask] = fv
    return out


def _scatter_into(full: np.ndarray, idx: np.ndarray, value: Any) -> np.ndarray:
    """Masked assignment into a full-lane vector, escalating to object
    dtype when the incoming values exceed int64 (exact-int semantics)."""
    if full.dtype != object:
        escalate = False
        if isinstance(value, np.ndarray):
            escalate = value.dtype == object
        elif isinstance(value, int) and not isinstance(value, bool):
            escalate = abs(value) > int(_INT_GUARD)
        if escalate:
            full = full.astype(object)
    full[idx] = value
    return full


# ===========================================================================
# Runtime context + preflight
# ===========================================================================


class _Ctx:
    """Mutable state threaded through the compiled vector closures.

    ``active`` is ``None`` (all lanes) or a sorted int64 array of
    *absolute* lane indices — the compressed-lane subset a masked
    region executes on.  ``read_logs``/``scatter`` are per-slot lists
    (``None`` for slots that need no deferral) backing the masked
    strategy's launch-time checks.
    """

    __slots__ = (
        "machine", "env", "slots", "lanes", "charge", "active",
        "read_logs", "scatter", "_all",
    )

    def __init__(self, machine: Any):
        self.machine = machine
        self.env: dict[str, Any] = {}
        self.slots: list[Any] = []
        self.lanes = 0
        self.charge: Callable[[int], None] = lambda n: None
        self.active: np.ndarray | None = None
        self.read_logs: list[Any] | None = None
        self.scatter: list[Any] | None = None
        self._all: tuple[int, np.ndarray] | None = None

    @property
    def count(self) -> int:
        """Lanes the current statement executes on."""
        return self.lanes if self.active is None else self.active.size

    def base_lanes(self) -> np.ndarray:
        """The current active set as an absolute index array."""
        if self.active is not None:
            return self.active
        cached = self._all
        if cached is None or cached[0] != self.lanes:
            cached = (self.lanes, np.arange(self.lanes, dtype=np.int64))
            self._all = cached
        return cached[1]


_SCALAR_TYPES = (bool, int, float, np.integer, np.floating)


def _preflight(machine: Any, specs: list[dict[str, Any]]) -> list[Any] | None:
    """Resolve every referenced binding; None declines the launch.

    Runs before any step is charged or any storage touched, so a
    declined launch falls back with zero observable effect.  Checks the
    *runtime* shapes eligibility could not see statically: pointers
    hiding behind scalars, struct-element arrays, and two names
    aliasing one written array.
    """
    slots: list[Any] = []
    seen_arrays: dict[int, bool] = {}
    for spec in specs:
        binding = spec["getter"](machine)
        kind = spec["kind"]
        if kind == "scalar":
            if not isinstance(binding, Cell):
                return None
            if not isinstance(binding.value, _SCALAR_TYPES):
                return None
            slots.append(binding)
        elif kind == "array":
            offset = 0
            obj = binding
            if isinstance(binding, Cell):
                value = binding.value
                if not isinstance(value, Pointer):
                    return None
                obj, offset = value.obj, value.offset
            if not isinstance(obj, ArrayObject) or obj.is_struct:
                return None
            storage = machine.storage_of(obj)
            if not isinstance(storage, np.ndarray):
                return None
            written_before = seen_arrays.get(obj.object_id)
            if written_before is not None and (written_before or spec["written"]):
                return None  # two names alias a written array
            seen_arrays[obj.object_id] = bool(written_before) or spec["written"]
            slots.append((storage, offset, obj.shape))
        else:  # struct
            if not isinstance(binding, StructObject):
                return None
            for member in spec["members"]:
                if not isinstance(binding.fields.get(member), _SCALAR_TYPES):
                    return None
            slots.append(binding)
    return slots


@dataclass(frozen=True)
class _Header:
    """Canonical for-loop header: ``for (int var = init; var op bound; var += step)``."""

    var: str
    init_expr: A.Expr
    op: str
    bound_expr: A.Expr
    step: int


def _trip_count(lo: int, bound: int, op: str, step: int) -> int | None:
    """Iterations of the canonical loop; None when not statically finite."""
    if op == "!=":
        delta = bound - lo
        if step != 0 and delta % step == 0 and delta // step >= 0:
            return delta // step
        return None  # interpreted path would run away; let it
    if op == "<":
        span = bound - lo
    elif op == "<=":
        span = bound - lo + 1
    elif op == ">":
        span = lo - bound
    else:  # ">="
        span = lo - bound + 1
    if span <= 0:
        return 0
    mag = abs(step)
    return (span + mag - 1) // mag


def _trip_vec(lo: np.ndarray, bound: np.ndarray, op: str, step: int) -> np.ndarray:
    """Per-lane trip counts of a ragged (lane-varying-bound) loop."""
    if op == "<":
        span = bound - lo
    elif op == "<=":
        span = bound - lo + 1
    elif op == ">":
        span = lo - bound
    else:  # ">="
        span = lo - bound + 1
    mag = abs(step)
    return np.maximum((span + mag - 1) // mag, 0)


# ===========================================================================
# Math-call lowering: NumPy ufuncs behind a libm-parity gate
# ===========================================================================

#: Functions whose results IEEE 754 pins down exactly: sqrt is required
#: correctly rounded, fabs/fmin/fmax are sign/comparison operations,
#: fmod's remainder is exactly representable.  These need no probe.
_UFUNC_EXACT = {
    "sqrt", "sqrtf", "fabs", "fabsf", "fmin", "fminf", "fmax", "fmaxf",
    "fmod", "abs", "floor", "ceil",
}

#: Per-process probe verdicts for the remaining (implementation-defined
#: rounding) functions; True = the NumPy build matched libm bit-for-bit
#: on the probe corpus.  Tests monkeypatch entries to force the scalar
#: path.
_UFUNC_PARITY: dict[str, bool] = {}


def _probe_values() -> np.ndarray:
    probe = np.concatenate([
        np.linspace(-9.75, 9.75, 157),
        np.geomspace(1e-300, 1e300, 101),
        -np.geomspace(1e-300, 1e300, 101),
        np.array([0.0, -0.0, 1.0, -1.0, 0.5, 2.0, math.pi, math.e,
                  699.9, 700.0, 1e-8, 123456.789]),
    ])
    return probe


def _parity_ok(name: str, np_fn: Callable[[np.ndarray], Any],
               math_fn: Callable[..., float], arity: int) -> bool:
    """Bit-compare the NumPy lowering against libm on the probe corpus.

    Lanes where libm raises (domain errors) are skipped — the vector
    implementations guard those domains and fall to the scalar path at
    runtime, so only the lanes both sides can compute must agree.
    """
    cached = _UFUNC_PARITY.get(name)
    if cached is not None:
        return cached
    probe = _probe_values()
    if arity == 2:
        xs = np.repeat(probe, 7)
        ys = np.resize(probe[::-1], xs.size)
        args = (xs, ys)
    else:
        args = (probe,)
    ok = True
    try:
        with np.errstate(all="ignore"):
            vec = np_fn(*args)
    except Exception:  # noqa: BLE001 - a raising lowering never vectorizes
        _UFUNC_PARITY[name] = False
        return False
    if vec is None:
        vec = np.full(args[0].size, np.nan)
    vec = np.asarray(vec, dtype=np.float64)
    for i in range(args[0].size):
        try:
            ref = math_fn(*(float(a[i]) for a in args))
        except (ValueError, OverflowError, ZeroDivisionError):
            continue
        got = float(vec[i])
        if np.float64(ref).tobytes() != np.float64(got).tobytes():
            ok = False
            break
    _UFUNC_PARITY[name] = ok
    return ok


def _np_clamped_exp(v: np.ndarray) -> np.ndarray:
    return np.exp(np.minimum(v, 700.0))


def _np_sqrt(v: np.ndarray) -> np.ndarray:
    return np.sqrt(np.maximum(v, 0.0))


def _np_log(v: np.ndarray) -> Any:
    return None if np.any(~(v > 0.0)) else np.log(v)


def _np_log2(v: np.ndarray) -> Any:
    return None if np.any(~(v > 0.0)) else np.log2(v)


def _np_log10(v: np.ndarray) -> Any:
    return None if np.any(~(v > 0.0)) else np.log10(v)


def _np_pow(x: np.ndarray, y: Any) -> Any:
    # Negative bases raise to complex in Python and 0**neg raises;
    # guard both to the per-lane path where libm semantics apply.
    if np.any(~(np.asarray(x, dtype=np.float64) > 0.0)):
        return None
    return np.power(x, y)


def _np_fmod(x: Any, y: Any) -> Any:
    return None if np.any(np.equal(y, 0.0)) else np.fmod(x, y)


def _np_fmin(x: Any, y: Any) -> Any:
    # Python's min(a, b) returns b only when b < a — asymmetric under
    # NaN, unlike np.minimum/np.fmin; np.where replicates it exactly.
    return np.where(np.less(y, x), y, x)


def _np_fmax(x: Any, y: Any) -> Any:
    return np.where(np.greater(y, x), y, x)


def _np_exp2(v: np.ndarray) -> np.ndarray:
    return np.exp2(np.minimum(v, 1000.0))


def _np_cbrt(v: np.ndarray) -> np.ndarray:
    return np.copysign(np.abs(v) ** (1.0 / 3.0), v)


def _np_floor(v: Any) -> Any:
    r = np.floor(np.asarray(v, dtype=np.float64))
    return None if np.any(np.abs(r) > _INT_GUARD) else r.astype(np.int64)


def _np_ceil(v: Any) -> Any:
    r = np.ceil(np.asarray(v, dtype=np.float64))
    return None if np.any(np.abs(r) > _INT_GUARD) else r.astype(np.int64)


def _np_abs(v: Any) -> Any:
    return np.abs(_as_int(v))


#: name -> (arity, vector implementation).  A vector implementation may
#: return ``None`` ("this input needs libm semantics") to push the call
#: onto the per-lane scalar path.  Float inputs are widened to float64
#: first — exactly the ``float(x)`` coercion the interpreter's builtins
#: apply.
_VEC_CALLS: dict[str, tuple[int, Callable[..., Any]]] = {
    "sqrt": (1, _np_sqrt),
    "sqrtf": (1, _np_sqrt),
    "fabs": (1, lambda v: np.abs(v)),
    "fabsf": (1, lambda v: np.abs(v)),
    "exp": (1, _np_clamped_exp),
    "expf": (1, _np_clamped_exp),
    "exp2": (1, _np_exp2),
    "log": (1, _np_log),
    "log2": (1, _np_log2),
    "log10": (1, _np_log10),
    "sin": (1, np.sin),
    "cos": (1, np.cos),
    "tan": (1, np.tan),
    "tanh": (1, np.tanh),
    "cbrt": (1, _np_cbrt),
    "pow": (2, _np_pow),
    "powf": (2, _np_pow),
    "fmod": (2, _np_fmod),
    "fmin": (2, _np_fmin),
    "fminf": (2, _np_fmin),
    "fmax": (2, _np_fmax),
    "fmaxf": (2, _np_fmax),
    "floor": (1, _np_floor),
    "ceil": (1, _np_ceil),
    "abs": (1, _np_abs),
}

#: Calls whose interpreter builtin coerces through float() — their
#: vector operands widen to float64 the same way.
_FLOAT_ARG_CALLS = set(_VEC_CALLS) - {"abs"}


# ===========================================================================
# The nest compiler
# ===========================================================================


class _NestCompiler:
    """Compiles one offload kernel's loop nest into a vector closure.

    One instance compiles one strategy attempt: the default mode covers
    ``straight``/``collapse``/``masked``/``ufunc`` (the label reflects
    which features the nest actually used); ``wavefront=True`` compiles
    the outer-sequential/inner-vector slicing mode instead.  Raises
    :class:`_Ineligible` the moment an unsupported construct appears;
    on success returns ``run(machine) -> bool`` where False means a
    launch-time check declined and the caller must try the next
    candidate (ultimately the interpreted body).
    """

    def __init__(
        self,
        interp: Any,
        directive: A.OMPExecutableDirective,
        *,
        collapse: bool = True,
        wavefront: bool = False,
    ):
        self.interp = interp
        self.directive = directive
        self.collapse = collapse and not wavefront
        self.wavefront = wavefront
        self.allow_scatter = not wavefront
        self.allow_ragged = not wavefront
        self.allow_seq_loops = not wavefront
        self.pvars: list[_Header] = []
        self.pvar_index: dict[str, int] = {}
        self._slice_header: _Header | None = None
        self._slice_var: str | None = None
        self._features: set[str] = set()
        self._depth = 0
        self._mask_depth = 0
        self._in_control = False
        self._tainted: set[str] = set()
        self._assigned: set[str] = set()
        self._local_ids: set[int] = set()
        self._local_names: set[str] = set()
        self._nonlocal_names: set[str] = set()
        self._scalar_loads: set[str] = set()
        self._shared_written: set[str] = set()
        self._specs: list[dict[str, Any]] = []
        self._slot_map: dict[Any, dict[str, Any]] = {}
        #: Per-slot store/load records: subscript chains (structural and
        #: affine) plus the injectivity check each store needs.
        self._writes: dict[int, list[dict[str, Any]]] = {}
        self._reads: dict[int, list[dict[str, Any]]] = {}
        #: Array slots referenced from ragged loop bounds — the trip
        #: counts are evaluated once per loop entry, so these arrays
        #: must not be written anywhere in the nest.
        self._control_slots: set[int] = set()
        #: Lane-invariance decisions taken mid-compile (loop bounds).
        #: Taint only grows, and a local can become lane-varying *after*
        #: the decision (assigned from a vector later in the same loop
        #: body — loop-carried), so every decision is re-checked against
        #: the final taint set in :meth:`_validate`.
        self._taint_checks: list[tuple[set[str], str]] = []
        #: Constant value ranges of in-scope sequential loop indices,
        #: for the store lane-disjointness check.
        self._loop_env: dict[str, tuple[int, int]] = {}
        #: Per-store disjointness obligations, checked against the real
        #: array shape at launch time (strides are runtime knowledge).
        self._store_checks: list[dict[str, Any]] = []
        #: Wavefront dependence obligations (analysis.depend), also
        #: evaluated at launch once strides are known.
        self._obligations: list[WavefrontObligation] = []
        #: Slots whose stores defer to the commit phase.
        self._scatter_slots: set[int] = set()
        #: Affine forms of single-assignment locals, substituted into
        #: subscript analysis (``int j = t - i; a[i*DIM + j]``); None =
        #: poisoned by reassignment.
        self._affine_forms: dict[str, tuple[dict[str, int], int] | None] = {}

    # -- entry ----------------------------------------------------------

    def compile(self) -> Callable[[Any], bool]:
        for_stmt = _unwrap_for(self.directive.associated_stmt)
        if not isinstance(for_stmt, A.ForStmt):
            raise _Ineligible("kernel body is not a for loop")
        self._local_ids = {
            d.node_id for d in for_stmt.walk_instances(A.VarDecl)
        }
        if self.wavefront:
            return self._compile_wavefront(for_stmt)
        header = self._loop_header(for_stmt, parallel=True)
        self._check_header_refs(header)
        self._add_pvar(header)
        body_stmt: A.Stmt | None = for_stmt.body
        if self.collapse:
            while True:
                inner = _unwrap_for(body_stmt)
                if not isinstance(inner, A.ForStmt) or not self._collapsible(inner):
                    break
                h = self._loop_header(inner, parallel=True)
                self._check_header_refs(h)
                self._add_pvar(h)
                body_stmt = inner.body
            if len(self.pvars) > 1:
                self._features.add("collapse")
        levels = [
            (
                h,
                self._compile_expr(h.init_expr, bound=True),
                self._compile_expr(h.bound_expr, bound=True),
            )
            for h in self.pvars
        ]
        body = [self._compile_stmt(s) for s in _stmts_of(body_stmt)]
        self._validate()
        return self._build_runner(levels, body)

    def _compile_wavefront(self, outer: A.ForStmt) -> Callable[[Any], bool]:
        slice_header = self._loop_header(outer, parallel=False)
        self._slice_header = slice_header
        self._slice_var = slice_header.var
        interval = self._header_interval(slice_header)
        if interval is not None:
            self._loop_env[slice_header.var] = interval
        inner = _unwrap_for(outer.body)
        if not isinstance(inner, A.ForStmt):
            raise _Ineligible("no inner loop to execute as wavefront slices")
        header = self._loop_header(inner, parallel=True)
        if header.op == "!=":
            raise _Ineligible("wavefront inner loop with '!=' condition")
        self._check_header_refs(header)
        self._add_pvar(header)
        slice_init = self._compile_expr(slice_header.init_expr, bound=True)
        slice_bound = self._compile_expr(slice_header.bound_expr, bound=True)
        inner_init = self._compile_expr(header.init_expr, bound=True)
        inner_bound = self._compile_expr(header.bound_expr, bound=True)
        body = [self._compile_stmt(s) for s in _stmts_of(inner.body)]
        self._validate()
        return self._build_wavefront_runner(
            (slice_init, slice_bound), (inner_init, inner_bound), body
        )

    def _add_pvar(self, header: _Header) -> None:
        self.pvar_index[header.var] = len(self.pvars)
        self.pvars.append(header)
        self._tainted.add(header.var)

    def _check_header_refs(self, header: _Header) -> None:
        refs = _ref_names(header.init_expr) | _ref_names(header.bound_expr)
        if refs & self._tainted:
            raise _Ineligible("loop bound depends on a vectorized value")
        self._taint_checks.append((refs, "loop bound"))

    def _collapsible(self, stmt: A.ForStmt) -> bool:
        """Cheap probe: can this inner loop join the parallel index space?

        Conservative on purpose — a False keeps the loop sequential
        (the PR 3 path), which is always correct.
        """
        var = find_indexing_var(stmt)
        if var is None:
            return False
        init = stmt.init
        if not isinstance(init, A.DeclStmt) or len(init.decls) != 1:
            return False
        decl = init.decls[0]
        if decl.name != var or decl.init is None:
            return False
        qt = decl.qual_type
        if qt is None or not qt.is_integer:
            return False
        if step_of(stmt.inc, var) == 0:
            return False
        for expr in (decl.init, stmt.cond):
            if expr is None:
                return False
            if _ref_names(expr) & self._tainted:
                return False
            for cls in (A.ArraySubscriptExpr, A.CallExpr, A.ConditionalOperator):
                if any(True for _ in expr.walk_instances(cls)):
                    return False
        return True

    def strategy_label(self) -> str:
        if self.wavefront:
            return "wavefront"
        if self._features & {"masked", "scatter", "ragged"}:
            return "masked"
        if "collapse" in self._features:
            return "collapse"
        if "ufunc" in self._features:
            return "ufunc"
        return "straight"

    # -- validation ------------------------------------------------------

    def _validate(self) -> None:
        for refs, what in self._taint_checks:
            if refs & self._tainted:
                # The decision was taken before a later statement made
                # one of these names lane-varying (loop-carried value).
                raise _Ineligible(
                    f"{what} depends on a vectorized value"
                )
        self._classify_arrays()
        if self._control_slots & set(self._writes):
            raise _Ineligible(
                "ragged loop bound reads an array the nest writes"
            )
        clause_names: set[str] = set()
        for cls in (A.OMPFirstprivateClause, A.OMPPrivateClause,
                    A.OMPReductionClause):
            for clause in self.directive.clauses_of(cls):
                clause_names.update(clause.var_names())  # type: ignore[attr-defined]
        for clause in self.directive.map_clauses():
            clause_names.update(item.name for item in clause.items)
        shadowed = self._local_names & (self._nonlocal_names | clause_names)
        if shadowed:
            raise _Ineligible(
                f"kernel-local name shadows a mapped variable: "
                f"{sorted(shadowed)[0]!r}"
            )
        clash = self._shared_written & self._scalar_loads
        if clash:
            raise _Ineligible(
                f"shared scalar {sorted(clash)[0]!r} is both read and updated"
            )

    def _classify_arrays(self) -> None:
        """Split written arrays into in-place (immediate stores) and
        scatter (deferred, launch-checked) classes; in wavefront mode,
        cross-chain pairs become dependence obligations instead."""
        for sidx, writes in self._writes.items():
            scatter_reason: str | None = None
            for w in writes:
                if w["forced"]:
                    scatter_reason = w["reason"]
                elif w["check"] is not None and (
                    w["check"]["syms"] & self._tainted
                ):
                    scatter_reason = (
                        "store subscript depends on a vectorized local"
                    )
            first = writes[0]["chain_exprs"]
            conflicting = [
                w for w in writes[1:]
                if not _chain_equal(first, w["chain_exprs"])
            ]
            mismatched = [
                r for r in self._reads.get(sidx, [])
                if not _chain_equal(first, r["chain_exprs"])
            ]
            if self.wavefront:
                if scatter_reason is not None:
                    raise _Ineligible(scatter_reason)
                for w in writes:
                    self._require_wavefront_chain(w["affine"])
                # Every distinct pair of accesses with at least one
                # write needs its own intra-slice obligation — pairing
                # only against the first chain would leave e.g. a
                # third store's collision with the second unchecked.
                for a_idx, wa in enumerate(writes):
                    for wb in writes[a_idx + 1:]:
                        if _chain_equal(wa["chain_exprs"], wb["chain_exprs"]):
                            continue
                        self._obligations.append(WavefrontObligation.make(
                            sidx, wa["affine"], wb["affine"]
                        ))
                for r in self._reads.get(sidx, []):
                    for w in writes:
                        if _chain_equal(w["chain_exprs"], r["chain_exprs"]):
                            continue
                        self._require_wavefront_chain(r["affine"])
                        self._obligations.append(WavefrontObligation.make(
                            sidx, w["affine"], r["affine"]
                        ))
                for w in writes:
                    self._store_checks.append(w["check"])
                continue
            if conflicting and scatter_reason is None:
                scatter_reason = "conflicting store subscripts"
            if mismatched and scatter_reason is None:
                scatter_reason = (
                    "array read/write subscript mismatch "
                    "(cross-iteration dependence)"
                )
            if scatter_reason is not None:
                if not self.allow_scatter:
                    raise _Ineligible(scatter_reason)
                self._scatter_slots.add(sidx)
                self._features.add("scatter")
            else:
                for w in writes:
                    self._store_checks.append(w["check"])

    def _require_wavefront_chain(self, chain: Any) -> None:
        if chain is None:
            raise _Ineligible(
                "non-affine subscript on a written array in a wavefront nest"
            )
        allowed = set(self.pvar_index)
        if self._slice_var is not None:
            allowed.add(self._slice_var)
        for coeffs, _const in chain:
            unknown = {n for n, c in coeffs.items() if c and n not in allowed}
            if unknown:
                raise _Ineligible(
                    f"wavefront subscript symbol {sorted(unknown)[0]!r} "
                    f"is not a loop index"
                )

    # -- loop headers ---------------------------------------------------

    def _loop_header(self, stmt: A.ForStmt, *, parallel: bool) -> _Header:
        var = find_indexing_var(stmt)
        if var is None:
            raise _Ineligible("unrecognized loop increment")
        init = stmt.init
        if not isinstance(init, A.DeclStmt) or len(init.decls) != 1:
            raise _Ineligible("loop init must declare its index variable")
        decl = init.decls[0]
        if decl.name != var or decl.init is None:
            raise _Ineligible("loop init must initialize its index variable")
        qt = decl.qual_type
        if qt is None or not qt.is_integer:
            raise _Ineligible("loop index is not an integer")
        step = step_of(stmt.inc, var)
        if step == 0:
            raise _Ineligible("non-constant loop step")
        cond = _strip(stmt.cond) if stmt.cond is not None else None
        if not isinstance(cond, A.BinaryOperator):
            raise _Ineligible("unrecognized loop condition")
        lhs, rhs, op = _strip(cond.lhs), _strip(cond.rhs), cond.op
        if isinstance(rhs, A.DeclRefExpr) and rhs.name == var:
            lhs, rhs = rhs, lhs
            op = _COND_FLIP.get(op, op)
        if not (isinstance(lhs, A.DeclRefExpr) and lhs.name == var):
            raise _Ineligible("loop condition does not test the index")
        if op not in _CMPS:
            raise _Ineligible(f"unsupported loop condition {op!r}")
        if op != "!=" and (step > 0) != (op in ("<", "<=")):
            raise _Ineligible("loop step runs away from its bound")
        if var in self._affine_forms:
            self._affine_forms[var] = None  # shadowed name: poison
        self._local_names.add(var)
        self._assigned.add(var)
        return _Header(var, decl.init, op, rhs, step)

    # -- affine analysis with single-assignment forwarding ---------------

    def _affine(self, expr: A.Expr) -> tuple[dict[str, int], int] | None:
        """``expr`` as ``sum(coeff[name] * name) + const``, or None.

        Single-assignment locals with affine initializers are
        substituted (``int j = t - i`` makes ``a[i*DIM + j]`` affine
        over the loop indices — nw's anti-diagonal shape)."""
        expr = _strip(expr)
        folded = fold_integer_constant(expr)
        if folded is not None:
            return {}, folded
        if isinstance(expr, A.DeclRefExpr):
            if isinstance(expr.decl, EnumConstantDecl):
                return {}, expr.decl.value
            form = self._affine_forms.get(expr.name)
            if form is not None:
                return dict(form[0]), form[1]
            return {expr.name: 1}, 0
        if isinstance(expr, A.UnaryOperator) and expr.op in ("-", "+"):
            inner = self._affine(expr.operand)
            if inner is None:
                return None
            if expr.op == "+":
                return inner
            coeffs, const = inner
            return {n: -c for n, c in coeffs.items()}, -const
        if isinstance(expr, A.BinaryOperator) and expr.op in ("+", "-"):
            left = self._affine(expr.lhs)
            right = self._affine(expr.rhs)
            if left is None or right is None:
                return None
            sign = 1 if expr.op == "+" else -1
            coeffs = dict(left[0])
            for name, c in right[0].items():
                coeffs[name] = coeffs.get(name, 0) + sign * c
            return coeffs, left[1] + sign * right[1]
        if isinstance(expr, A.BinaryOperator) and expr.op == "*":
            left = self._affine(expr.lhs)
            right = self._affine(expr.rhs)
            if left is None or right is None:
                return None
            for (ca, ka), (cb, kb) in ((left, right), (right, left)):
                if not ca:  # one side folds to a pure constant
                    return {n: c * ka for n, c in cb.items()}, kb * ka
            return None
        return None

    def _record_affine_local(self, name: str, init: A.Expr | None) -> None:
        if name in self._affine_forms:
            self._affine_forms[name] = None  # redeclared: poison
            return
        form = self._affine(init) if init is not None else None
        self._affine_forms[name] = form

    def _chain_affine(
        self, indices: list[A.Expr]
    ) -> list[tuple[dict[str, int], int]] | None:
        chain = []
        for ix in indices:
            form = self._affine(ix)
            if form is None:
                return None
            chain.append(form)
        return chain

    # -- statements -----------------------------------------------------

    def _compile_stmt(self, stmt: A.Stmt) -> Callable[[_Ctx], None]:
        if isinstance(stmt, A.NullStmt):
            return lambda ctx: None
        if isinstance(stmt, A.CompoundStmt):
            parts = [self._compile_stmt(s) for s in stmt.stmts]

            def run_block(ctx: _Ctx) -> None:
                for part in parts:
                    part(ctx)

            return run_block
        if isinstance(stmt, A.DeclStmt):
            return self._compile_decl(stmt)
        if isinstance(stmt, A.ExprStmt):
            return self._compile_expr_stmt(stmt)
        if isinstance(stmt, A.ForStmt):
            return self._compile_for(stmt)
        if isinstance(stmt, A.IfStmt):
            return self._compile_if(stmt)
        raise _Ineligible(f"unsupported kernel statement {stmt.class_name}")

    def _compile_if(self, stmt: A.IfStmt) -> Callable[[_Ctx], None]:
        self._features.add("masked")
        fast = self._compile_if_fast(stmt)
        if fast is not None:
            return fast
        cond_cl = self._compile_expr(stmt.cond)
        self._mask_depth += 1
        then_parts = [
            self._compile_stmt(s) for s in _stmts_of(stmt.then_branch)
        ]
        else_parts = [
            self._compile_stmt(s) for s in _stmts_of(stmt.else_branch)
        ]
        self._mask_depth -= 1

        def run_if(ctx: _Ctx) -> None:
            ctx.charge(ctx.count)
            c = cond_cl(ctx)
            if not isinstance(c, np.ndarray):
                for part in (then_parts if c else else_parts):
                    part(ctx)
                return
            base = ctx.base_lanes()
            mask = c != 0
            saved = ctx.active
            try:
                taken = base[mask]
                if taken.size:
                    ctx.active = taken
                    for part in then_parts:
                        part(ctx)
                if else_parts:
                    rest = base[~mask]
                    if rest.size:
                        ctx.active = rest
                        for part in else_parts:
                            part(ctx)
            finally:
                ctx.active = saved

        return run_if

    def _compile_if_fast(self, stmt: A.IfStmt) -> Callable[[_Ctx], None] | None:
        """``if (c) { v = e; }`` with a fault-free condition and RHS and
        a local target lowers to one ``np.where`` merge — nw's inner
        max-folding guards hit this on every slice, where the generic
        compressed-branch machinery would allocate per slice."""
        if stmt.else_branch is not None:
            return None
        stmts = _stmts_of(stmt.then_branch)
        if len(stmts) != 1 or not isinstance(stmts[0], A.ExprStmt):
            return None
        expr = _strip(stmts[0].expr)
        if not isinstance(expr, A.BinaryOperator) or expr.op != "=":
            return None
        target = _strip(expr.lhs)
        if not isinstance(target, A.DeclRefExpr) or not self._is_local(target):
            return None
        if target.name in self.pvar_index:
            return None
        if self._branch_can_fault(stmt.cond) or self._branch_can_fault(expr.rhs):
            return None
        name = target.name
        cond_cl = self._compile_expr(stmt.cond)
        rhs_cl = self._compile_expr(expr.rhs)
        coerce = _coercer(target.qual_type)
        self._tainted.add(name)
        self._affine_forms[name] = None
        self._assigned.add(name)

        def run_fast(ctx: _Ctx) -> None:
            ctx.charge(ctx.count)  # the if statement's tick
            c = cond_cl(ctx)
            if not isinstance(c, np.ndarray):
                if c:
                    ctx.charge(ctx.count)  # the assignment tick
                    _env_assign(ctx, name, coerce(rhs_cl(ctx)))
                return
            mask = c != 0
            taken = int(mask.sum())
            if not taken:
                return
            ctx.charge(taken)  # assignment ticks on taken lanes only
            try:
                old = ctx.env[name]
            except KeyError:
                raise SimulationError(
                    f"use of uninitialized variable {name!r}"
                ) from None
            if ctx.active is not None and isinstance(old, np.ndarray):
                old = old[ctx.active]
            _env_assign(
                ctx, name, coerce(np.where(mask, rhs_cl(ctx), old))
            )

        return run_fast

    def _compile_decl(self, stmt: A.DeclStmt) -> Callable[[_Ctx], None]:
        entries = []
        for decl in stmt.decls:
            qt = decl.qual_type
            if qt is None or qt.is_pointer or isinstance(
                qt.type, (ArrayType, StructType)
            ):
                raise _Ineligible("kernel-local aggregate or pointer")
            init_cl = (
                self._compile_expr(decl.init) if decl.init is not None else None
            )
            if self._mask_depth > 0 or (
                decl.init is not None
                and _ref_names(decl.init) & self._tainted
            ):
                self._tainted.add(decl.name)
            self._record_affine_local(decl.name, decl.init)
            self._local_names.add(decl.name)
            self._assigned.add(decl.name)
            default = 0.0 if qt.is_floating else 0
            entries.append((decl.name, init_cl, _coercer(qt), default))

        def run(ctx: _Ctx) -> None:
            ctx.charge(ctx.count)
            for name, init_cl, coerce, default in entries:
                value = (
                    coerce(init_cl(ctx)) if init_cl is not None else default
                )
                _env_set(ctx, name, value, default)

        return run

    @staticmethod
    def _header_interval(header: _Header) -> tuple[int, int] | None:
        """Inclusive range the loop index can take, when fully constant."""
        lo = fold_integer_constant(header.init_expr)
        bound = fold_integer_constant(header.bound_expr)
        if lo is None or bound is None:
            return None
        if header.op == "<":
            ends = (lo, bound - 1)
        elif header.op == "<=":
            ends = (lo, bound)
        elif header.op == ">":
            ends = (bound + 1, lo)
        elif header.op == ">=":
            ends = (bound, lo)
        else:  # "!=" — endpoints still bound the walk
            ends = (lo, bound - header.step)
        return min(ends), max(ends)

    def _compile_for(self, stmt: A.ForStmt) -> Callable[[_Ctx], None]:
        if not self.allow_seq_loops:
            raise _Ineligible("inner loop inside a wavefront slice body")
        header = self._loop_header(stmt, parallel=False)
        bound_refs = _ref_names(header.init_expr) | _ref_names(header.bound_expr)
        ragged = bool(bound_refs & self._tainted)
        if not ragged:
            for expr in (header.init_expr, header.bound_expr):
                if any(True for _ in expr.walk_instances(A.ArraySubscriptExpr)):
                    ragged = True
                    break
        if ragged:
            return self._compile_ragged_for(stmt, header, bound_refs)
        init_cl = self._compile_expr(header.init_expr, bound=True)
        bound_cl = self._compile_expr(header.bound_expr, bound=True)
        self._taint_checks.append((bound_refs, "loop bound"))
        assigned_before = set(self._assigned)
        interval = self._header_interval(header)
        shadowed = self._loop_env.get(header.var)
        if interval is not None:
            self._loop_env[header.var] = interval
        self._depth += 1
        body = [self._compile_stmt(s) for s in _stmts_of(stmt.body)]
        self._depth -= 1
        if interval is not None:
            if shadowed is None:
                del self._loop_env[header.var]
            else:
                self._loop_env[header.var] = shadowed
        assigned_inside = self._assigned - assigned_before
        if assigned_inside & bound_refs:
            raise _Ineligible("loop bound mutated inside the loop body")
        if header.var in assigned_inside:
            raise _Ineligible("loop index reassigned inside the loop body")
        cmp = _CMPS[header.op]
        var, step = header.var, header.step

        def run(ctx: _Ctx) -> None:
            ctx.charge(ctx.count)  # the init DeclStmt, once per lane
            v = int(init_cl(ctx))
            bound = int(bound_cl(ctx))
            while True:
                ctx.charge(ctx.count)  # the condition-check tick per lane
                if not cmp(v, bound):
                    break
                ctx.env[var] = v
                for part in body:
                    part(ctx)
                v += step

        return run

    def _compile_ragged_for(
        self, stmt: A.ForStmt, header: _Header, bound_refs: set[str]
    ) -> Callable[[_Ctx], None]:
        """Lane-varying trip counts: iterate k-major over the refined
        active set (bfs's ``for (t = starts[i]; t < starts[i+1]; ...)``).

        The k-major order transposes the interpreter's lane-major one,
        which is only observable through cross-lane dependences — and
        those are exactly what the scatter commit checks rule out, so
        ragged loops force the nest into the deferred-store class via
        the tainted loop variable."""
        if not self.allow_ragged:
            raise _Ineligible("loop bound depends on a vectorized value")
        if header.op == "!=":
            raise _Ineligible("ragged loop with '!=' condition")
        self._features.add("ragged")
        self._in_control = True
        init_cl = self._compile_expr(header.init_expr)
        bound_cl = self._compile_expr(header.bound_expr)
        self._in_control = False
        self._tainted.add(header.var)
        assigned_before = set(self._assigned)
        self._depth += 1
        body = [self._compile_stmt(s) for s in _stmts_of(stmt.body)]
        self._depth -= 1
        assigned_inside = self._assigned - assigned_before
        if assigned_inside & bound_refs:
            raise _Ineligible("loop bound mutated inside the loop body")
        if header.var in assigned_inside:
            raise _Ineligible("loop index reassigned inside the loop body")
        var, op, step = header.var, header.op, header.step

        def run(ctx: _Ctx) -> None:
            n = ctx.count
            if n == 0:
                return
            ctx.charge(n)  # the init DeclStmt, once per active lane
            lo = _as_lane_vec(_as_int(init_cl(ctx)), n)
            bound = _as_lane_vec(_as_int(bound_cl(ctx)), n)
            trips = _trip_vec(lo, bound, op, step)
            # Exact total of condition-check ticks (each lane runs
            # trips+1 checks), summed in Python ints so a runaway bound
            # cannot wrap int64 — charged before any body work so
            # max_steps trips without allocating per-k vectors.
            ctx.charge(int(trips.astype(object).sum()) + n)
            maxk = int(trips.max()) if n else 0
            if maxk == 0:
                return
            base = ctx.base_lanes()
            saved = ctx.active
            try:
                for k in range(maxk):
                    live = trips > k
                    sel = base[live]
                    old = ctx.env.get(var)
                    if isinstance(old, np.ndarray) and old.shape[0] == ctx.lanes:
                        full = old.copy()
                    else:
                        full = np.zeros(ctx.lanes, dtype=np.int64)
                    full[sel] = lo[live] + k * step
                    ctx.env[var] = full
                    ctx.active = sel
                    for part in body:
                        part(ctx)
            finally:
                ctx.active = saved

        return run

    def _compile_expr_stmt(self, stmt: A.ExprStmt) -> Callable[[_Ctx], None]:
        expr = _strip(stmt.expr)
        if not isinstance(expr, A.BinaryOperator) or not expr.is_assignment:
            raise _Ineligible(
                f"unsupported kernel statement {expr.class_name}"
            )
        target = _strip(expr.lhs)
        if isinstance(target, A.DeclRefExpr):
            if self._is_local(target):
                return self._compile_local_assign(expr, target)
            return self._compile_shared_assign(expr, target)
        if isinstance(target, A.ArraySubscriptExpr):
            return self._compile_array_store(expr, target)
        raise _Ineligible(f"unsupported assignment target {target.class_name}")

    def _is_local(self, ref: A.DeclRefExpr) -> bool:
        return ref.decl is not None and ref.decl.node_id in self._local_ids

    # -- scalar assignments ---------------------------------------------

    def _compile_local_assign(
        self, expr: A.BinaryOperator, target: A.DeclRefExpr
    ) -> Callable[[_Ctx], None]:
        name = target.name
        if name in self.pvar_index:
            raise _Ineligible("assignment to the parallel index")
        rhs_cl = self._compile_expr(expr.rhs)
        coerce = _coercer(target.qual_type)
        if (
            _ref_names(expr.rhs) & self._tainted
            or name in self._tainted
            or self._mask_depth > 0
        ):
            self._tainted.add(name)
        self._affine_forms[name] = None  # reassigned: poison forwarding
        self._assigned.add(name)
        if expr.op == "=":
            def run_assign(ctx: _Ctx) -> None:
                ctx.charge(ctx.count)
                _env_assign(ctx, name, coerce(rhs_cl(ctx)))

            return run_assign
        fn = _VEC_BINOPS[_COMPOUND[expr.op]]

        def run_compound(ctx: _Ctx) -> None:
            ctx.charge(ctx.count)
            try:
                old = ctx.env[name]
            except KeyError:
                raise SimulationError(
                    f"use of uninitialized variable {name!r}"
                ) from None
            if ctx.active is not None and isinstance(old, np.ndarray):
                old_view = old[ctx.active]
            else:
                old_view = old
            _env_assign(ctx, name, coerce(fn(old_view, rhs_cl(ctx))))

        return run_compound

    def _compile_shared_assign(
        self, expr: A.BinaryOperator, target: A.DeclRefExpr
    ) -> Callable[[_Ctx], None]:
        name = target.name
        if self.wavefront:
            raise _Ineligible("shared scalar update in a wavefront nest")
        if self._depth != 0:
            raise _Ineligible("shared scalar updated inside an inner loop")
        if name in self._shared_written:
            raise _Ineligible(f"shared scalar {name!r} updated twice")
        self._shared_written.add(name)
        self._assigned.add(name)
        sidx = self._slot(target, "scalar", written=True)
        qt = target.qual_type
        coerce = _coercer(qt)

        if expr.op in ("+=", "-="):
            # Integer accumulation would need per-step truncation; floats
            # replay the exact sequential rounding through cumsum.  Under
            # a mask, the compressed lanes are exactly the ones the
            # interpreter would accumulate, in ascending lane order.
            if qt is None or not qt.is_floating:
                raise _Ineligible("non-float shared accumulation")
            if name in _ref_names(expr.rhs):
                raise _Ineligible("accumulation reads its own target")
            rhs_cl = self._compile_expr(expr.rhs)
            negate = expr.op == "-="

            def run_acc(ctx: _Ctx) -> None:
                ctx.charge(ctx.count)
                cell = ctx.slots[sidx]
                vec = _broadcast(rhs_cl(ctx), ctx.count)
                cell.value = _seq_sum(
                    float(cell.value), -vec if negate else vec
                )

            return run_acc

        if expr.op != "=":
            raise _Ineligible(
                f"unsupported shared-scalar update {expr.op!r}"
            )

        mode, other = self._match_minmax(expr.rhs, target)
        if mode is not None:
            if qt is None or not qt.is_floating:
                raise _Ineligible("non-float min/max reduction")
            if name in _ref_names(other):
                raise _Ineligible("min/max reduction reads its own target")
            other_cl = self._compile_expr(other)
            reduce_fn = (
                np.minimum.reduce if mode == "min" else np.maximum.reduce
            )
            pick = min if mode == "min" else max

            def run_minmax(ctx: _Ctx) -> None:
                ctx.charge(ctx.count)
                cell = ctx.slots[sidx]
                vec = _broadcast(other_cl(ctx), ctx.count)
                cell.value = float(pick(cell.value, float(reduce_fn(vec))))

            return run_minmax

        if name in _ref_names(expr.rhs):
            raise _Ineligible("shared scalar reads its own update")
        rhs_cl = self._compile_expr(expr.rhs)

        def run_last(ctx: _Ctx) -> None:
            # The interpreter assigns once per executing lane in lane
            # order; the surviving value is the last (active) lane's.
            ctx.charge(ctx.count)
            value = rhs_cl(ctx)
            if isinstance(value, np.ndarray):
                value = value[-1].item() if value.ndim else value.item()
            ctx.slots[sidx].value = coerce(value)

        return run_last

    def _match_minmax(
        self, rhs: A.Expr, target: A.DeclRefExpr
    ) -> tuple[str | None, A.Expr | None]:
        """Recognize ``t = fmin(t, e)`` and ``t = e < t ? e : t`` shapes."""
        rhs = _strip(rhs)
        if isinstance(rhs, A.CallExpr):
            mode = _MINMAX_CALLS.get(rhs.callee_name or "")
            if mode is not None and len(rhs.args) == 2:
                a, b = _strip(rhs.args[0]), _strip(rhs.args[1])
                a_is_t = _expr_equal(a, target)
                b_is_t = _expr_equal(b, target)
                if a_is_t != b_is_t:
                    return mode, b if a_is_t else a
            return None, None
        if not isinstance(rhs, A.ConditionalOperator):
            return None, None
        cond = _strip(rhs.cond)
        if not isinstance(cond, A.BinaryOperator) or cond.op not in (
            "<", "<=", ">", ">="
        ):
            return None, None
        a, b = _strip(cond.lhs), _strip(cond.rhs)
        t, f = _strip(rhs.true_expr), _strip(rhs.false_expr)
        if _expr_equal(t, a) and _expr_equal(f, b):
            true_is_lhs = True
        elif _expr_equal(t, b) and _expr_equal(f, a):
            true_is_lhs = False
        else:
            return None, None
        is_less = cond.op in ("<", "<=")
        mode = "min" if (true_is_lhs == is_less) else "max"
        a_is_t = _expr_equal(a, target)
        b_is_t = _expr_equal(b, target)
        if a_is_t == b_is_t:
            return None, None
        return mode, b if a_is_t else a

    # -- array stores ---------------------------------------------------

    def _subscript_chain(
        self, expr: A.ArraySubscriptExpr
    ) -> tuple[A.DeclRefExpr, list[A.Expr]]:
        indices: list[A.Expr] = []
        node: A.Expr = expr
        while isinstance(node, A.ArraySubscriptExpr):
            indices.append(node.index)
            node = _strip(node.base)
        indices.reverse()
        if not isinstance(node, A.DeclRefExpr):
            raise _Ineligible("unsupported subscript base")
        if self._is_local(node):
            raise _Ineligible("subscript of a kernel-local value")
        return node, indices

    def _injectivity_check(
        self,
        sidx: int,
        chain: list[tuple[dict[str, int], int]],
        ndims: int,
    ) -> dict[str, Any]:
        """Build the launch-time lane-disjointness obligation for one
        store; raises when the subscript cannot be proven injective."""
        pvar_terms: list[tuple[int, int, int]] = []
        seen_levels: set[int] = set()
        spread: list[tuple[int, int, int]] = []
        syms: set[str] = set()
        for k, (coeffs, _const) in enumerate(chain):
            for sym, coeff in coeffs.items():
                if coeff == 0:
                    continue
                if sym in self.pvar_index:
                    lvl = self.pvar_index[sym]
                    if lvl in seen_levels:
                        raise _Ineligible(
                            "parallel index in several store dimensions"
                        )
                    seen_levels.add(lvl)
                    pvar_terms.append((lvl, k, abs(coeff)))
                    continue
                if sym == self._slice_var:
                    # Fixed within one wavefront slice; cross-slice
                    # collisions resolve in slice (= sequential) order.
                    continue
                syms.add(sym)
                if sym in self._tainted:
                    raise _Ineligible(
                        "store subscript depends on a vectorized local"
                    )
                interval = self._loop_env.get(sym)
                if interval is None:
                    # Only symbols with statically known ranges (inner
                    # loop indices with constant bounds) can be proven
                    # lane-disjoint.
                    raise _Ineligible(
                        "store subscript symbol with unknown range"
                    )
                spread.append((k, abs(coeff), interval[1] - interval[0]))
        if len(seen_levels) != len(self.pvars):
            raise _Ineligible(
                "store subscript is not injective in the parallel index"
            )
        return {
            "slot": sidx,
            "ndims": ndims,
            "pvar_terms": pvar_terms,
            "spread_terms": spread,
            "syms": syms,
        }

    def _compile_array_store(
        self, expr: A.BinaryOperator, target: A.ArraySubscriptExpr
    ) -> Callable[[_Ctx], None]:
        base, indices = self._subscript_chain(target)
        sidx = self._slot(base, "array", written=True)
        affine_chain = self._chain_affine(indices)
        check: dict[str, Any] | None = None
        forced = False
        reason: str | None = None
        if affine_chain is None:
            forced, reason = True, "non-affine store subscript"
        else:
            try:
                check = self._injectivity_check(
                    sidx, affine_chain, len(indices)
                )
            except _Ineligible as exc:
                if len(self.pvars) > 1:
                    # Under collapse, prefer retrying with the inner
                    # level sequential (often restoring a clean
                    # in-place store) over demoting to scatter.
                    raise
                forced, reason = True, str(exc)
        if forced and not self.allow_scatter:
            raise _Ineligible(reason or "non-affine store subscript")
        self._writes.setdefault(sidx, []).append({
            "chain_exprs": indices,
            "affine": affine_chain,
            "forced": forced,
            "check": check,
            "reason": reason,
        })
        idx_cls = [self._compile_expr(ix) for ix in indices]
        rhs_cl = self._compile_expr(expr.rhs)
        fn = None if expr.op == "=" else _VEC_BINOPS[_COMPOUND[expr.op]]

        def run(ctx: _Ctx) -> None:
            ctx.charge(ctx.count)
            storage, offset, shape = ctx.slots[sidx]
            pos = offset + _flat_index([c(ctx) for c in idx_cls], shape)
            buf = ctx.scatter[sidx] if ctx.scatter is not None else None
            if buf is None:
                if fn is None:
                    storage[pos] = rhs_cl(ctx)
                else:
                    storage[pos] = fn(_widen(storage[pos]), rhs_cl(ctx))
                return
            n = ctx.count
            posv = _as_lane_vec(pos, n)
            if fn is None:
                val = rhs_cl(ctx)
            else:
                # Reads the pre-launch state: the commit's uniqueness
                # check guarantees no earlier buffered store targeted
                # these elements.
                val = fn(_widen(storage[posv]), rhs_cl(ctx))
            buf.append((posv, _as_value_vec(val, n)))

        return run

    # -- slots ----------------------------------------------------------

    def _slot(
        self, ref: A.DeclRefExpr, kind: str, *, written: bool = False
    ) -> int:
        key = (
            kind,
            ref.decl.node_id if ref.decl is not None else f"name:{ref.name}",
        )
        spec = self._slot_map.get(key)
        if spec is None:
            spec = {
                "kind": kind,
                "getter": self.interp._binding_getter(ref),
                "name": ref.name,
                "written": False,
                "members": set(),
                "index": len(self._specs),
            }
            self._slot_map[key] = spec
            self._specs.append(spec)
        spec["written"] = spec["written"] or written
        self._nonlocal_names.add(ref.name)
        return spec["index"]

    # -- expressions ----------------------------------------------------

    def _compile_expr(
        self, expr: A.Expr, *, bound: bool = False
    ) -> Callable[[_Ctx], Any]:
        expr = _strip(expr)
        folded = fold_integer_constant(expr)
        if folded is not None:
            return lambda ctx: folded
        if isinstance(expr, A.IntegerLiteral) or isinstance(
            expr, A.FloatingLiteral
        ) or isinstance(expr, A.CharacterLiteral):
            value = expr.value
            return lambda ctx: value
        if isinstance(expr, A.DeclRefExpr):
            return self._compile_ref(expr, bound=bound)
        if isinstance(expr, A.ArraySubscriptExpr):
            if bound:
                raise _Ineligible("array access in a loop bound")
            return self._compile_array_load(expr)
        if isinstance(expr, A.MemberExpr):
            return self._compile_member(expr)
        if isinstance(expr, A.BinaryOperator):
            return self._compile_binop(expr, bound=bound)
        if isinstance(expr, A.UnaryOperator):
            return self._compile_unop(expr, bound=bound)
        if isinstance(expr, A.ConditionalOperator):
            return self._compile_ternary(expr, bound=bound)
        if isinstance(expr, A.CStyleCastExpr):
            if expr.target_type.is_pointer:
                raise _Ineligible("pointer cast in kernel")
            operand = self._compile_expr(expr.operand, bound=bound)
            coerce = _coercer(expr.target_type)
            return lambda ctx: coerce(operand(ctx))
        if isinstance(expr, A.CallExpr):
            return self._compile_call(expr, bound=bound)
        raise _Ineligible(f"unsupported kernel expression {expr.class_name}")

    @staticmethod
    def _branch_can_fault(expr: A.Expr) -> bool:
        """Could evaluating ``expr`` on a discarded lane fault?

        Division/modulo (zero divisors), gathers (out-of-range
        subscripts) and math calls (domain errors) can; plain
        arithmetic cannot, and such branches may evaluate on every lane
        through one ``np.where`` — the cheap PR 3 lowering.
        """
        for node in expr.walk_instances(A.BinaryOperator):
            if node.op in ("/", "%"):
                return True
        if any(True for _ in expr.walk_instances(A.ArraySubscriptExpr)):
            return True
        if any(True for _ in expr.walk_instances(A.CallExpr)):
            return True
        return False

    def _compile_ternary(
        self, expr: A.ConditionalOperator, *, bound: bool
    ) -> Callable[[_Ctx], Any]:
        """Lane-varying conditionals whose branches could fault evaluate
        each branch on exactly the lanes that selected it (compressed
        actives), so division, overflow and gathers in the untaken
        branch never execute — the interpreter never executes them
        either.  Fault-free branches keep the one-``np.where`` path."""
        cond = self._compile_expr(expr.cond, bound=bound)
        true_cl = self._compile_expr(expr.true_expr, bound=bound)
        false_cl = self._compile_expr(expr.false_expr, bound=bound)
        if not (
            self._branch_can_fault(expr.true_expr)
            or self._branch_can_fault(expr.false_expr)
        ):
            def run_where(ctx: _Ctx) -> Any:
                c = cond(ctx)
                if not isinstance(c, np.ndarray):
                    return true_cl(ctx) if c else false_cl(ctx)
                return np.where(c != 0, true_cl(ctx), false_cl(ctx))

            return run_where
        if not bound:
            self._features.add("merge")

        def run_cond(ctx: _Ctx) -> Any:
            c = cond(ctx)
            if not isinstance(c, np.ndarray):
                return true_cl(ctx) if c else false_cl(ctx)
            mask = c != 0
            if mask.all():
                return true_cl(ctx)
            if not mask.any():
                return false_cl(ctx)
            base = ctx.base_lanes()
            saved = ctx.active
            try:
                ctx.active = base[mask]
                tv = true_cl(ctx)
                ctx.active = base[~mask]
                fv = false_cl(ctx)
            finally:
                ctx.active = saved
            return _masked_merge(mask, tv, fv)

        return run_cond

    def _compile_call(
        self, expr: A.CallExpr, *, bound: bool
    ) -> Callable[[_Ctx], Any]:
        name = expr.callee_name or "<indirect>"
        spec = _VEC_CALLS.get(name)
        math_fn = self.interp._math.get(name)
        if spec is None or math_fn is None or len(expr.args) != spec[0]:
            raise _Ineligible(f"call to {name!r} in kernel")
        arity, np_fn = spec
        arg_cls = [self._compile_expr(a, bound=bound) for a in expr.args]
        self._features.add("ufunc")
        widen_args = name in _FLOAT_ARG_CALLS

        def run_call(ctx: _Ctx) -> Any:
            vals = [c(ctx) for c in arg_cls]
            if not any(isinstance(v, np.ndarray) for v in vals):
                return math_fn(*vals)
            if widen_args:
                vals = [
                    (v.astype(np.float64) if v.dtype != np.float64 else v)
                    if isinstance(v, np.ndarray) else float(v)
                    for v in vals
                ]
            if name in _UFUNC_EXACT or _parity_ok(name, np_fn, math_fn, arity):
                result = np_fn(*vals)
                if result is not None:
                    return result
            # Per-lane libm loop: the same builtin closure the
            # interpreter calls, so rounding is identical by identity.
            n = ctx.count
            cols = [
                _broadcast(v, n).tolist()
                if isinstance(v, np.ndarray) else [v] * n
                for v in vals
            ]
            out = [math_fn(*args) for args in zip(*cols)]
            if name in ("floor", "ceil", "abs"):
                try:
                    return np.array(out, dtype=np.int64)
                except OverflowError:
                    return np.array(out, dtype=object)
            return np.array(out, dtype=np.float64)

        return run_call

    def _compile_ref(
        self, ref: A.DeclRefExpr, *, bound: bool
    ) -> Callable[[_Ctx], Any]:
        if isinstance(ref.decl, EnumConstantDecl):
            value = ref.decl.value
            return lambda ctx: value
        if isinstance(ref.decl, A.FunctionDecl):
            raise _Ineligible("function reference in kernel")
        name = ref.name
        if self._is_local(ref):
            if bound and name in self._tainted:
                raise _Ineligible("loop bound depends on a vectorized value")

            def load_local(ctx: _Ctx) -> Any:
                try:
                    v = ctx.env[name]
                except KeyError:
                    raise SimulationError(
                        f"use of uninitialized variable {name!r}"
                    ) from None
                if ctx.active is not None and isinstance(v, np.ndarray):
                    return v[ctx.active]
                return v

            return load_local
        qt = ref.qual_type
        if qt is not None and (
            qt.is_pointer or isinstance(qt.type, (ArrayType, StructType))
        ):
            raise _Ineligible(f"non-scalar value {name!r} used as a scalar")
        sidx = self._slot(ref, "scalar")
        self._scalar_loads.add(name)
        return lambda ctx: ctx.slots[sidx].value

    def _compile_array_load(
        self, expr: A.ArraySubscriptExpr
    ) -> Callable[[_Ctx], Any]:
        base, indices = self._subscript_chain(expr)
        sidx = self._slot(base, "array")
        self._reads.setdefault(sidx, []).append({
            "chain_exprs": indices,
            "affine": self._chain_affine(indices),
        })
        if self._in_control:
            self._control_slots.add(sidx)
        idx_cls = [self._compile_expr(ix) for ix in indices]

        def load(ctx: _Ctx) -> Any:
            storage, offset, shape = ctx.slots[sidx]
            pos = offset + _flat_index([c(ctx) for c in idx_cls], shape)
            logs = ctx.read_logs
            if logs is not None:
                log = logs[sidx]
                if log is not None:
                    log.append(
                        pos if isinstance(pos, np.ndarray)
                        else np.array([pos], dtype=np.int64)
                    )
            return _widen(storage[pos])

        return load

    def _compile_member(self, expr: A.MemberExpr) -> Callable[[_Ctx], Any]:
        base = _strip(expr.base)
        if expr.is_arrow:
            raise _Ineligible("pointer member access in kernel")
        if not isinstance(base, A.DeclRefExpr) or self._is_local(base):
            raise _Ineligible("unsupported member access base")
        member = expr.member
        sidx = self._slot(base, "struct")
        self._specs[sidx]["members"].add(member)
        return lambda ctx: ctx.slots[sidx].fields[member]

    def _compile_binop(
        self, expr: A.BinaryOperator, *, bound: bool
    ) -> Callable[[_Ctx], Any]:
        op = expr.op
        if expr.is_assignment:
            raise _Ineligible("assignment inside a kernel expression")
        if op == ",":
            raise _Ineligible("comma expression in kernel")
        lhs = self._compile_expr(expr.lhs, bound=bound)
        rhs = self._compile_expr(expr.rhs, bound=bound)
        if op in ("&&", "||"):
            is_and = op == "&&"

            def run_logical(ctx: _Ctx) -> Any:
                a = lhs(ctx)
                if not isinstance(a, np.ndarray):
                    # Lane-invariant left side keeps the interpreter's
                    # short-circuit (guards div-by-zero on the right).
                    if bool(a) != is_and:
                        return int(not is_and)
                    b = rhs(ctx)
                    if not isinstance(b, np.ndarray):
                        return int(bool(b))
                    return (b != 0).astype(np.int64)
                # Lane-varying left side: evaluate the right side only
                # on the lanes that did not short-circuit (compressed),
                # exactly the lanes the interpreter evaluates it on.
                amask = a != 0
                sel = amask if is_and else ~amask
                out = np.empty(amask.size, dtype=np.int64)
                out[~sel] = 0 if is_and else 1
                if sel.any():
                    saved = ctx.active
                    try:
                        if not sel.all():
                            ctx.active = ctx.base_lanes()[sel]
                        b = rhs(ctx)
                    finally:
                        ctx.active = saved
                    if isinstance(b, np.ndarray):
                        out[sel] = (b != 0).astype(np.int64)
                    else:
                        out[sel] = 1 if b else 0
                return out

            return run_logical
        fn = _VEC_BINOPS.get(op)
        if fn is None:
            raise _Ineligible(f"unsupported operator {op!r} in kernel")
        return lambda ctx: fn(lhs(ctx), rhs(ctx))

    def _compile_unop(
        self, expr: A.UnaryOperator, *, bound: bool
    ) -> Callable[[_Ctx], Any]:
        op = expr.op
        if op in ("++", "--", "&", "*"):
            raise _Ineligible(f"unsupported unary operator {op!r} in kernel")
        operand = self._compile_expr(expr.operand, bound=bound)
        if op == "-":
            return lambda ctx: -operand(ctx)
        if op == "+":
            return operand
        if op == "!":
            def run_not(ctx: _Ctx) -> Any:
                v = operand(ctx)
                if isinstance(v, np.ndarray):
                    return (v == 0).astype(np.int64)
                return int(not v)

            return run_not
        if op == "~":
            def run_inv(ctx: _Ctx) -> Any:
                v = operand(ctx)
                if isinstance(v, np.ndarray):
                    return ~_as_int(v)
                return ~int(v)

            return run_inv
        raise _Ineligible(f"unsupported unary operator {op!r} in kernel")

    # -- runners ---------------------------------------------------------

    @staticmethod
    def _make_charge(machine: Any) -> Callable[[int], None]:
        # Captured at launch: kernels run on-device, host loops (the
        # same executor drives both since phase 2) tick the host ledger.
        profiler = machine.profiler
        tick = (
            profiler.tick_device if machine.on_device else profiler.tick_host
        )

        def charge(n: int) -> None:
            machine.steps += n
            if machine.steps > machine.max_steps:
                raise SimulationError(
                    f"simulation exceeded {machine.max_steps} steps "
                    f"(runaway loop?)"
                )
            tick(n)

        return charge

    def _stores_disjoint_fn(self) -> Callable[[list[Any], list[int]], bool]:
        """Lane-disjointness of every store, against real strides.

        Generalized mixed-radix dominance: order the parallel-index
        terms by their per-step element gap and require each gap to
        clear the total excursion of all finer terms plus the span of
        the sequential-loop symbols.  This is what makes ``b*HID + h``
        (h < HID), ``m[i][j]`` (j within the row) and the collapsed
        ``(i, h) -> i*HID + h`` space safe while ``a[i + j]`` is not.
        """
        store_checks = self._store_checks
        steps = [h.step for h in self.pvars]

        def stores_disjoint(slots: list[Any], trips: list[int]) -> bool:
            for check in store_checks:
                _, _, shape = slots[check["slot"]]
                ndims = check["ndims"]

                def stride_of(k: int) -> int:
                    if ndims == 1:
                        return 1  # _flat_index uses the raw index
                    stride = 1
                    for d in shape[k + 1:]:
                        stride *= d
                    return stride

                span = sum(
                    coeff * stride_of(k) * width
                    for k, coeff, width in check["spread_terms"]
                )
                terms = sorted(
                    (
                        coeff * stride_of(dim) * abs(steps[lvl]),
                        max(trips[lvl], 1),
                    )
                    for lvl, dim, coeff in check["pvar_terms"]
                )
                acc = span
                for gap, count in terms:
                    if gap <= acc:
                        return False
                    acc += gap * (count - 1)
            return True

        return stores_disjoint

    def _snapshot_indices(self) -> tuple[list[int], list[int]]:
        arrays = [
            s["index"] for s in self._specs
            if s["kind"] == "array" and s["written"]
        ]
        cells = [
            s["index"] for s in self._specs
            if s["kind"] == "scalar" and s["written"]
        ]
        return arrays, cells

    def _build_runner(
        self,
        levels: list[tuple[_Header, Callable, Callable]],
        body: list[Callable[[_Ctx], None]],
    ) -> Callable[[Any], bool]:
        specs = self._specs
        nspecs = len(specs)
        scatter_slots = sorted(self._scatter_slots)
        stores_disjoint = self._stores_disjoint_fn()
        # Only two constructs can decline mid-launch — a mixed-type
        # conditional merge and a failed scatter commit; everything
        # else (plain masks, ragged loops) runs to completion, so it
        # skips the per-launch snapshot copies entirely.
        need_txn = bool(self._features & {"merge", "scatter"})
        arr_idx, cell_idx = self._snapshot_indices()
        make_charge = self._make_charge

        def run(machine: Any) -> bool:
            slots = _preflight(machine, specs)
            if slots is None:
                return False
            ctx = _Ctx(machine)
            ctx.slots = slots
            los: list[int] = []
            trips: list[int] = []
            for header, init_cl, bound_cl in levels:
                lo = int(init_cl(ctx))
                bound = int(bound_cl(ctx))
                t = _trip_count(lo, bound, header.op, header.step)
                if t is None:
                    return False  # interpreted path would run away; let it
                los.append(lo)
                trips.append(t)
            if not stores_disjoint(slots, trips):
                return False
            charge = make_charge(machine)
            ctx.charge = charge
            # Snapshot the ledger before the first charge: a declined
            # launch must leave no trace, including the header ticks.
            steps0 = machine.steps
            dev0 = machine.profiler.device_work
            host0 = machine.profiler.host_work
            saved_arrays: list[tuple[int, np.ndarray]] = []
            saved_cells: list[tuple[int, Any]] = []
            if need_txn:
                saved_arrays = [(i, slots[i][0].copy()) for i in arr_idx]
                saved_cells = [(i, slots[i].value) for i in cell_idx]
            # Interpreted cost of the loop headers: each level's init
            # DeclStmt ticks once per enclosing iteration, plus its
            # trips+1 condition checks.  Charged before the index
            # vectors are allocated, so max_steps trips on runaway
            # bounds without a giant arange.
            charge(1 + trips[0] + 1)
            prefix = trips[0]
            for t in trips[1:]:
                charge(prefix)
                charge(prefix * (t + 1))
                prefix *= t
            if not prefix:
                return True
            ctx.lanes = prefix
            idx = np.arange(prefix, dtype=np.int64)
            suffix = prefix
            for (header, _, _), lo, t in zip(levels, los, trips):
                suffix //= t
                ctx.env[header.var] = lo + header.step * ((idx // suffix) % t)
            if scatter_slots:
                ctx.read_logs = [None] * nspecs
                ctx.scatter = [None] * nspecs
                for i in scatter_slots:
                    ctx.read_logs[i] = []
                    ctx.scatter[i] = []
            try:
                for part in body:
                    part(ctx)
                if scatter_slots:
                    _commit_scatter(ctx, scatter_slots, slots)
            except _RuntimeDecline:
                machine.steps = steps0
                machine.profiler.device_work = dev0
                machine.profiler.host_work = host0
                for i, snap in saved_arrays:
                    np.copyto(slots[i][0], snap)
                for i, value in saved_cells:
                    slots[i].value = value
                return False
            return True

        return run

    def _build_wavefront_runner(
        self,
        slice_cls: tuple[Callable, Callable],
        inner_cls: tuple[Callable, Callable],
        body: list[Callable[[_Ctx], None]],
    ) -> Callable[[Any], bool]:
        specs = self._specs
        sh = self._slice_header
        assert sh is not None
        inner_h = self.pvars[0]
        sv = sh.var
        obligations = self._obligations
        stores_disjoint = self._stores_disjoint_fn()
        arr_idx, cell_idx = self._snapshot_indices()
        slice_init, slice_bound = slice_cls
        inner_init, inner_bound = inner_cls
        cmp = _CMPS[sh.op]
        make_charge = self._make_charge
        # Only a mixed-type conditional merge can decline a wavefront
        # launch mid-flight (the dependence obligations run up front).
        need_txn = "merge" in self._features

        def run(machine: Any) -> bool:
            slots = _preflight(machine, specs)
            if slots is None:
                return False
            # Launch-time dependence classification: every store/load
            # pair on a written array must be free of intra-slice
            # dependences (analysis.depend); cross-slice flow/anti/
            # output dependences are honoured by slice order itself.
            for ob in obligations:
                if not ob.holds(slots[ob.slot][2], sv):
                    return False
            ctx = _Ctx(machine)
            ctx.slots = slots
            if not stores_disjoint(slots, [1]):
                return False
            lo = int(slice_init(ctx))
            bound = int(slice_bound(ctx))
            charge = make_charge(machine)
            ctx.charge = charge
            steps0 = machine.steps
            dev0 = machine.profiler.device_work
            host0 = machine.profiler.host_work
            saved_arrays: list[tuple[int, np.ndarray]] = []
            saved_cells: list[tuple[int, Any]] = []
            if need_txn:
                saved_arrays = [(i, slots[i][0].copy()) for i in arr_idx]
                saved_cells = [(i, slots[i].value) for i in cell_idx]
            charge(1)  # the slice loop's init DeclStmt
            v = lo
            try:
                while True:
                    charge(1)  # slice condition-check tick
                    if not cmp(v, bound):
                        break
                    ctx.env[sv] = v
                    charge(1)  # inner init DeclStmt tick
                    ilo = int(inner_init(ctx))
                    ibound = int(inner_bound(ctx))
                    t = _trip_count(ilo, ibound, inner_h.op, inner_h.step)
                    charge((t or 0) + 1)
                    if t:
                        ctx.lanes = t
                        ctx._all = None
                        ctx.env[inner_h.var] = (
                            ilo + inner_h.step * np.arange(t, dtype=np.int64)
                        )
                        for part in body:
                            part(ctx)
                    v += sh.step
            except _RuntimeDecline:
                machine.steps = steps0
                machine.profiler.device_work = dev0
                machine.profiler.host_work = host0
                for i, snap in saved_arrays:
                    np.copyto(slots[i][0], snap)
                for i, value in saved_cells:
                    slots[i].value = value
                return False
            return True

        return run


# ===========================================================================
# Masked environment merging + scatter commit
# ===========================================================================


def _materialize(value: Any, lanes: int) -> np.ndarray:
    if (
        isinstance(value, int)
        and not isinstance(value, bool)
        and abs(value) > int(_INT_GUARD)
    ):
        return np.full(lanes, value, dtype=object)
    return np.full(lanes, value)


def _env_set(ctx: _Ctx, name: str, value: Any, default: Any) -> None:
    """DeclStmt binding: under a mask, merge into a full-lane vector.

    Inactive lanes keep their previous value (or the declaration
    default) — they are only ever read under the same or a narrower
    mask, so the filler is unobservable.
    """
    if ctx.active is None:
        ctx.env[name] = value
        return
    old = ctx.env.get(name, default)
    if isinstance(old, np.ndarray) and old.shape[0] == ctx.lanes:
        full = old.copy()  # never mutate a shared vector in place
    else:
        full = _materialize(
            old if not isinstance(old, np.ndarray) else default, ctx.lanes
        )
    ctx.env[name] = _scatter_into(full, ctx.active, value)


def _env_assign(ctx: _Ctx, name: str, value: Any) -> None:
    """Plain assignment to an existing local, mask-aware."""
    if ctx.active is None:
        ctx.env[name] = value
        return
    old = ctx.env.get(name)
    if old is None:
        raise SimulationError(f"use of uninitialized variable {name!r}")
    if isinstance(old, np.ndarray) and old.shape[0] == ctx.lanes:
        full = old.copy()
    else:
        full = _materialize(old if not isinstance(old, np.ndarray) else 0,
                            ctx.lanes)
    ctx.env[name] = _scatter_into(full, ctx.active, value)


def _commit_scatter(
    ctx: _Ctx, scatter_slots: list[int], slots: list[Any]
) -> None:
    """Apply deferred stores after proving order-independence.

    Buffered stores must target pairwise-distinct elements (duplicate
    targets make the result depend on lane vs statement order) and must
    not overlap any logged load of the same array (a load that observed
    the pre-launch state where the interpreter would have seen the
    store).  Either violation declines the launch before any deferred
    element is written.
    """
    staged: list[int] = []
    for sidx in scatter_slots:
        buf = ctx.scatter[sidx]  # type: ignore[index]
        if not buf:
            continue
        pos = np.concatenate([p for p, _ in buf])
        uniq = np.unique(pos)
        if uniq.size != pos.size:
            raise _RuntimeDecline(
                "colliding scatter stores (lane-order dependent)"
            )
        logs = ctx.read_logs[sidx]  # type: ignore[index]
        if logs:
            reads = np.unique(np.concatenate(logs))
            if np.intersect1d(uniq, reads, assume_unique=True).size:
                raise _RuntimeDecline(
                    "scatter store overlaps a load of the same array"
                )
        staged.append(sidx)
    for sidx in staged:
        storage = slots[sidx][0]
        for pos, val in ctx.scatter[sidx]:  # type: ignore[index]
            storage[pos] = val


# ===========================================================================
# Public entry points
# ===========================================================================


@dataclass
class VectorCandidate:
    """One compiled lowering of a kernel, tried in order at launch.

    ``declines`` counts launches the runner refused at runtime; the
    dispatcher sorts candidates by it (stable), so a shape that always
    fails its launch checks — e.g. hotspot's in-place stencil under the
    masked scatter checks — pays the failed attempt once and then runs
    its working strategy first.
    """

    runner: Callable[[Any], bool]
    strategy: str
    declines: int = 0


def compile_kernel_candidates(
    interp: Any, stmt: A.OMPExecutableDirective
) -> tuple[list[VectorCandidate], str | None]:
    """Compile every applicable strategy for one kernel directive.

    Returns ``(candidates, note)``: candidates in preference order
    (empty when nothing compiles, with ``note`` holding the static
    ineligibility reason).  Every candidate is bit-identical to the
    interpreter when it accepts a launch, so order affects only speed.
    """
    nest: tuple[Callable[[Any], bool], str, set[str]] | None = None
    nest_compiler: _NestCompiler | None = None
    first_err: str | None = None
    try:
        compiler = _NestCompiler(interp, stmt, collapse=True)
        nest = (compiler.compile(), compiler.strategy_label(),
                set(compiler._features))
        nest_compiler = compiler
    except _Ineligible as exc:
        first_err = str(exc)
        try:
            compiler = _NestCompiler(interp, stmt, collapse=False)
            nest = (compiler.compile(), compiler.strategy_label(),
                    set(compiler._features))
            nest_compiler = compiler
        except _Ineligible as exc2:
            first_err = str(exc2)
    except Exception as exc:  # noqa: BLE001 - fallback is always correct
        first_err = f"vectorizer error: {exc!r}"

    wave: tuple[Callable[[Any], bool], str] | None = None
    if nest is None or (nest[2] & {"scatter", "ragged"}):
        try:
            compiler = _NestCompiler(interp, stmt, wavefront=True)
            wave = (compiler.compile(), "wavefront")
        except _Ineligible:
            pass
        except Exception:  # noqa: BLE001 - fallback is always correct
            pass

    candidates: list[VectorCandidate] = []
    if nest is not None and not (nest[2] & {"scatter"}):
        if nest_compiler is not None:
            from .codegen import compile_straight_candidate

            fast = compile_straight_candidate(
                interp, stmt, nest_compiler, nest[1], nest[2]
            )
            if fast is not None:
                candidates.append(fast)
        candidates.append(VectorCandidate(nest[0], nest[1]))
        if wave is not None:
            candidates.append(VectorCandidate(*wave))
    else:
        if wave is not None:
            candidates.append(VectorCandidate(*wave))
        if nest is not None:
            candidates.append(VectorCandidate(nest[0], nest[1]))

    replay_err: str | None = None
    if candidates:
        # Another strategy exists, so the sequential replay is only the
        # launch-time safety net — compile it lazily, on the first
        # launch the preferred strategies decline.  Kernels that never
        # decline (the straight/collapse majority) never pay for it.
        candidates.append(
            VectorCandidate(_lazy_replay(interp, stmt), "wavefront")
        )
    else:
        try:
            from .replay import compile_replay

            candidates.append(
                VectorCandidate(compile_replay(interp, stmt), "wavefront")
            )
        except _Ineligible as exc:
            replay_err = str(exc)
        except Exception as exc:  # noqa: BLE001 - fallback is always correct
            replay_err = f"replay error: {exc!r}"
    note = None
    if not candidates:
        note = first_err or replay_err or "no vectorization strategy applies"
    return candidates, note


class _HostLoopShim:
    """Adapts a bare host ``for`` statement to the directive interface
    the nest/replay compilers consume (no clauses, no mappings).

    Since phase 2 the same executor also drives eligible *host* loops —
    after the kernels vectorized, the interpreted host code (init
    loops, checksum reductions) became the suite's dominant serial
    cost.  Host launches charge the host tick ledger and read host
    storage; they are deliberately invisible to the kernel coverage
    metrics (``vectorized_launches``/``strategy_launches``)."""

    __slots__ = ("associated_stmt", "node_id")

    def __init__(self, stmt: A.ForStmt):
        self.associated_stmt = stmt
        self.node_id = stmt.node_id

    @staticmethod
    def clauses_of(_cls: type) -> list:
        return []

    @staticmethod
    def map_clauses() -> list:
        return []


def compile_host_loop_candidates(
    interp: Any, stmt: A.ForStmt
) -> list[VectorCandidate]:
    """Compile vector candidates for a host-side ``for`` loop.

    Returns an empty list when nothing applies (the interpreted loop
    runs, as before) — host loops never record fallback notes."""
    shim = _HostLoopShim(stmt)
    candidates, _note = compile_kernel_candidates(interp, shim)
    return candidates


def _lazy_replay(
    interp: Any, stmt: A.OMPExecutableDirective
) -> Callable[[Any], bool]:
    """Deferred :func:`repro.runtime.replay.compile_replay` runner."""
    compiled: list[Callable[[Any], bool] | None] = []

    def runner(machine: Any) -> bool:
        if not compiled:
            try:
                from .replay import compile_replay

                compiled.append(compile_replay(interp, stmt))
            except Exception:  # noqa: BLE001 - fallback is always correct
                compiled.append(None)
        fn = compiled[0]
        return False if fn is None else fn(machine)

    return runner


def try_vectorize(
    interp: Any, stmt: A.OMPExecutableDirective
) -> tuple[Callable[[Any], bool] | None, str | None]:
    """Single-runner facade over :func:`compile_kernel_candidates`.

    Returns ``(runner, None)`` on success — ``runner(machine)`` tries
    each strategy in (adaptively re-ordered) preference order and
    returns True when one executed the nest, or False when every
    candidate declined at launch time (the caller then runs the
    interpreted body) — or ``(None, reason)`` when the nest is
    statically ineligible for every strategy.
    """
    candidates, note = compile_kernel_candidates(interp, stmt)
    if not candidates:
        return None, note

    def runner(machine: Any) -> bool:
        for cand in sorted(candidates, key=lambda c: c.declines):
            if cand.runner(machine):
                return True
            cand.declines += 1
        return False

    return runner, None
