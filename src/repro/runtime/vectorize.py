"""Vectorizing kernel executor: NumPy evaluation of offload loop nests.

The closure interpreter executes every kernel one loop iteration at a
time — for the paper's O(N^2) kernels (clenergy's lattice x atom sweep)
this dominates suite wall time.  This module lowers eligible
``target ... for`` loop nests to NumPy array expressions evaluated
directly against device storage, the standard escape hatch for
data-parallel loops in Python tree interpreters (compare Devito's
lowering of stencil loop nests to array expressions).

Eligibility (checked once, at closure-compile time)
---------------------------------------------------

A kernel's associated loop nest vectorizes when:

* the outer loop has a canonical header: ``for (int i = e0; i <op> e1;
  i += c)`` with a constant step (recognized through the same
  :mod:`repro.analysis.bounds` machinery the mapping analysis uses) and
  loop-invariant bound expressions;
* the body contains only declarations of scalar locals, assignments,
  and nested canonical ``for`` loops — no ``if``/``while``/``switch``,
  no ``break``/``continue``/``return``, no calls (``printf`` included),
  no pointer arithmetic or address-taking beyond array subscripts;
* every array that is *written* uses a single subscript shape that is
  affine in the parallel index with a nonzero coefficient (each
  iteration owns a private element) and every read of that same array
  uses the identical subscript — arrays that are only read may be
  gathered with arbitrary (even data-dependent) subscripts;
* scalars shared with the host (mapped or ``reduction`` clause
  variables) are updated at most once, at nest top level, through a
  recognized reduction shape: ``s += e`` / ``s -= e``, ``s = fmin(s,
  e)`` / ``fmax``, or the equivalent conditional ``s = e < s ? e : s``
  — and are not otherwise read inside the nest.

Anything else falls back to the closure interpreter; correctness never
depends on the vectorizer.  ``Interpreter(vectorize=False)`` (CLI:
``--no-vectorize``) disables it outright.

Exactness
---------

The vectorized path is bit-identical to the interpreted path, not just
close: element updates run per-lane-private (same IEEE operations in
the same order), integer ``/`` and ``%`` use C truncating semantics,
``+``/``-`` reductions replay the loop's sequential rounding through a
``cumsum`` prefix scan, and ``min``/``max`` reductions are
order-independent.  The step/tick ledger is charged *synthetically*:
each vector-executed statement charges the exact number of
``Machine.tick`` calls the interpreted loop would have made, so
``kernel_time_s``, ``omp_get_wtime`` and the Fig. 5/6 metrics are
unchanged.  Charges land *before* the corresponding array expression is
evaluated, so the ``Machine.max_steps`` runaway-loop guard still trips
— without first allocating a runaway-sized index vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..frontend import ast_nodes as A
from ..frontend.ctypes_ import ArrayType, QualType, StructType
from ..frontend.parser import EnumConstantDecl, fold_integer_constant
from ..analysis.bounds import find_indexing_var, step_of
from .interp import SimulationError, _c_div, _c_mod
from .values import ArrayObject, Cell, Pointer, StructObject

__all__ = ["try_vectorize"]


class _Ineligible(Exception):
    """Internal: the nest cannot be vectorized; fall back (with reason)."""


# ===========================================================================
# Small helpers
# ===========================================================================


def _strip(expr: A.Expr) -> A.Expr:
    while isinstance(expr, A.ParenExpr):
        expr = expr.inner
    return expr


def _stmts_of(body: A.Stmt | None) -> list[A.Stmt]:
    if body is None:
        return []
    if isinstance(body, A.CompoundStmt):
        return list(body.stmts)
    return [body]


def _unwrap_for(stmt: A.Stmt | None) -> A.Stmt | None:
    """Peel single-statement compounds down to the loop they wrap."""
    while isinstance(stmt, A.CompoundStmt) and len(stmt.stmts) == 1:
        stmt = stmt.stmts[0]
    return stmt


def _ref_names(expr: A.Expr | None) -> set[str]:
    if expr is None:
        return set()
    return {r.name for r in expr.walk_instances(A.DeclRefExpr)}


def _expr_equal(x: A.Expr, y: A.Expr) -> bool:
    """Structural equality of the restricted (side-effect-free) grammar."""
    x, y = _strip(x), _strip(y)
    fx = fold_integer_constant(x)
    if fx is not None:
        return fx == fold_integer_constant(y)
    if type(x) is not type(y):
        return False
    if isinstance(x, A.IntegerLiteral) or isinstance(x, A.FloatingLiteral) \
            or isinstance(x, A.CharacterLiteral):
        return x.value == y.value
    if isinstance(x, A.DeclRefExpr):
        if x.decl is not None and y.decl is not None:
            return x.decl.node_id == y.decl.node_id
        return x.name == y.name
    if isinstance(x, A.UnaryOperator):
        return x.op == y.op and _expr_equal(x.operand, y.operand)
    if isinstance(x, A.BinaryOperator):
        return (x.op == y.op and _expr_equal(x.lhs, y.lhs)
                and _expr_equal(x.rhs, y.rhs))
    if isinstance(x, A.ConditionalOperator):
        return (_expr_equal(x.cond, y.cond)
                and _expr_equal(x.true_expr, y.true_expr)
                and _expr_equal(x.false_expr, y.false_expr))
    if isinstance(x, A.ArraySubscriptExpr):
        return _expr_equal(x.base, y.base) and _expr_equal(x.index, y.index)
    if isinstance(x, A.MemberExpr):
        return (x.member == y.member and x.is_arrow == y.is_arrow
                and _expr_equal(x.base, y.base))
    return False


def _chain_equal(a: list[A.Expr], b: list[A.Expr]) -> bool:
    return len(a) == len(b) and all(_expr_equal(x, y) for x, y in zip(a, b))


def _affine(expr: A.Expr) -> tuple[dict[str, int], int] | None:
    """``expr`` as ``sum(coeff[name] * name) + const``, or None."""
    expr = _strip(expr)
    folded = fold_integer_constant(expr)
    if folded is not None:
        return {}, folded
    if isinstance(expr, A.DeclRefExpr):
        if isinstance(expr.decl, EnumConstantDecl):
            return {}, expr.decl.value
        return {expr.name: 1}, 0
    if isinstance(expr, A.UnaryOperator) and expr.op in ("-", "+"):
        inner = _affine(expr.operand)
        if inner is None:
            return None
        if expr.op == "+":
            return inner
        coeffs, const = inner
        return {n: -c for n, c in coeffs.items()}, -const
    if isinstance(expr, A.BinaryOperator) and expr.op in ("+", "-"):
        left = _affine(expr.lhs)
        right = _affine(expr.rhs)
        if left is None or right is None:
            return None
        sign = 1 if expr.op == "+" else -1
        coeffs = dict(left[0])
        for name, c in right[0].items():
            coeffs[name] = coeffs.get(name, 0) + sign * c
        return coeffs, left[1] + sign * right[1]
    if isinstance(expr, A.BinaryOperator) and expr.op == "*":
        left = _affine(expr.lhs)
        right = _affine(expr.rhs)
        if left is None or right is None:
            return None
        for (ca, ka), (cb, kb) in ((left, right), (right, left)):
            if not ca:  # one side folds to a pure constant
                return {n: c * ka for n, c in cb.items()}, kb * ka
        return None
    return None


# ===========================================================================
# Vector numeric semantics (mirroring the closure interpreter exactly)
# ===========================================================================


def _int_like(v: Any) -> bool:
    if isinstance(v, np.ndarray):
        # Object arrays only arise from the exact-integer escalation in
        # _grow_op, so they always hold Python ints.
        return v.dtype.kind in "buiO"
    return isinstance(v, (bool, int, np.integer))


#: Magnitude above which an int64 float approximation may have wrapped;
#: half of 2**63 leaves a 2x margin over float64 rounding error.
_INT_GUARD = float(2 ** 62)


def _grow_op(py_op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """``+``/``-``/``*`` with exact integer semantics.

    The interpreter computes every lane in unbounded Python ints; int64
    lanes would silently wrap past 2**63.  A float64 shadow of the
    result flags potential wraparound, and flagged ops are redone in
    object dtype (element-wise Python ints) — exact, like the
    interpreter, at object-array speed only in the rare kernels that
    actually overflow.
    """

    def fn(a: Any, b: Any) -> Any:
        result = py_op(a, b)
        if (
            _int_like(a)
            and _int_like(b)
            and (isinstance(a, np.ndarray) or isinstance(b, np.ndarray))
            and not (
                isinstance(result, np.ndarray) and result.dtype.kind == "O"
            )
        ):
            approx = py_op(
                np.asarray(a, dtype=np.float64),
                np.asarray(b, dtype=np.float64),
            )
            if np.any(np.abs(approx) > _INT_GUARD):
                return py_op(
                    np.asarray(a, dtype=object), np.asarray(b, dtype=object)
                )
        return result

    return fn


def _vec_div(a: Any, b: Any) -> Any:
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _c_div(a, b)
    if _int_like(a) and _int_like(b):
        if np.any(np.equal(b, 0)):
            raise SimulationError("integer division by zero")
        q = np.floor_divide(np.abs(a), np.abs(b))
        neg = np.not_equal(np.greater_equal(a, 0), np.greater_equal(b, 0))
        return np.where(neg, -q, q)
    if np.any(np.equal(b, 0)):
        # The interpreter computes per-lane in Python, where float
        # division by zero raises; matching that beats a silent inf.
        raise ZeroDivisionError("float division by zero")
    return a / b


def _vec_mod(a: Any, b: Any) -> Any:
    if not isinstance(a, np.ndarray) and not isinstance(b, np.ndarray):
        return _c_mod(a, b)
    if _int_like(a) and _int_like(b):
        if np.any(np.equal(b, 0)):
            raise SimulationError("integer modulo by zero")
        return a - _vec_div(a, b) * b
    if np.any(np.equal(b, 0)):
        raise ValueError("math domain error")  # math.fmod(x, 0.0)
    return np.fmod(a, b)


def _cmp_fn(op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    def fn(a: Any, b: Any) -> Any:
        r = op(a, b)
        if isinstance(r, np.ndarray):
            return r.astype(np.int64)
        return int(r)

    return fn


def _as_int(v: Any) -> Any:
    if isinstance(v, np.ndarray):
        if v.dtype.kind == "f":
            return np.trunc(v).astype(np.int64)
        if v.dtype != np.int64:
            return v.astype(np.int64)
        return v
    return int(v)


def _widen(v: Any) -> Any:
    """Array-load widening, mirroring the interpreter's ``.item()``.

    The closure interpreter converts every loaded element to a Python
    float (= float64) or unbounded int before computing, narrowing only
    when the value is stored back into array storage.  Vector loads
    must widen the same way, or float32 kernels would double-round
    (float32 ops lane-side vs float64-compute + one narrowing store
    interpreter-side) and diverge bitwise.
    """
    if isinstance(v, np.ndarray):
        if v.dtype.kind == "f" and v.dtype != np.float64:
            return v.astype(np.float64)
        if v.dtype.kind in "bui" and v.dtype != np.int64:
            return v.astype(np.int64)
        return v
    if isinstance(v, np.generic):
        return v.item()
    return v


def _int_op(op: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    return lambda a, b: op(_as_int(a), _as_int(b))


_VEC_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _grow_op(lambda a, b: a + b),
    "-": _grow_op(lambda a, b: a - b),
    "*": _grow_op(lambda a, b: a * b),
    "/": _vec_div,
    "%": _vec_mod,
    "<": _cmp_fn(lambda a, b: a < b),
    ">": _cmp_fn(lambda a, b: a > b),
    "<=": _cmp_fn(lambda a, b: a <= b),
    ">=": _cmp_fn(lambda a, b: a >= b),
    "==": _cmp_fn(lambda a, b: np.equal(a, b)),
    "!=": _cmp_fn(lambda a, b: np.not_equal(a, b)),
    "&": _int_op(lambda a, b: a & b),
    "|": _int_op(lambda a, b: a | b),
    "^": _int_op(lambda a, b: a ^ b),
    "<<": _int_op(lambda a, b: a << b),
    ">>": _int_op(lambda a, b: a >> b),
}

_COMPOUND = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

_CMPS: dict[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "!=": lambda a, b: a != b,
}

_COND_FLIP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "!=": "!="}

_MINMAX_CALLS = {"fmin": "min", "fminf": "min", "fmax": "max", "fmaxf": "max"}


def _coercer(qt: QualType | None) -> Callable[[Any], Any]:
    """Store-side coercion matching the interpreter's ``_coerce_for``."""
    if qt is not None and qt.is_integer:
        return _as_int
    if qt is not None and qt.is_floating:
        def to_float(v: Any) -> Any:
            # Always float64, whatever the declared width: the
            # interpreter's ``float(v)`` coercion computes C-float
            # locals in double precision too.
            if isinstance(v, np.ndarray):
                return v if v.dtype == np.float64 else v.astype(np.float64)
            return float(v)

        return to_float
    return lambda v: v


def _broadcast(value: Any, lanes: int) -> np.ndarray:
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    return np.full(lanes, value)


def _seq_sum(init: float, vec: np.ndarray) -> float:
    """Sequential-order float accumulation: ``((init+v0)+v1)+...``.

    ``cumsum`` computes every prefix, so each partial sum is rounded in
    loop order — bit-identical to the interpreted accumulation, unlike
    pairwise ``np.sum``.
    """
    buf = np.empty(vec.size + 1, dtype=np.float64)
    buf[0] = init
    buf[1:] = vec
    return float(buf.cumsum()[-1])


def _flat_index(vals: list[Any], shape: tuple[int, ...]) -> Any:
    """Row-major flattening, mirroring ``ArrayObject.flat_index``."""
    if len(vals) == 1:
        return vals[0]
    flat: Any = 0
    for k, v in enumerate(vals):
        stride = 1
        for d in shape[k + 1:]:
            stride *= d
        flat = flat + v * stride
    return flat


# ===========================================================================
# Runtime context + preflight
# ===========================================================================


class _Ctx:
    """Mutable state threaded through the compiled vector closures."""

    __slots__ = ("machine", "env", "slots", "lanes", "charge")

    def __init__(self, machine: Any):
        self.machine = machine
        self.env: dict[str, Any] = {}
        self.slots: list[Any] = []
        self.lanes = 0
        self.charge: Callable[[int], None] = lambda n: None


_SCALAR_TYPES = (bool, int, float, np.integer, np.floating)


def _preflight(machine: Any, specs: list[dict[str, Any]]) -> list[Any] | None:
    """Resolve every referenced binding; None declines the launch.

    Runs before any step is charged or any storage touched, so a
    declined launch falls back to the interpreter with zero observable
    effect.  Checks the *runtime* shapes eligibility could not see
    statically: pointers hiding behind scalars, struct-element arrays,
    and two names aliasing one written array.
    """
    slots: list[Any] = []
    seen_arrays: dict[int, bool] = {}
    for spec in specs:
        binding = spec["getter"](machine)
        kind = spec["kind"]
        if kind == "scalar":
            if not isinstance(binding, Cell):
                return None
            if not isinstance(binding.value, _SCALAR_TYPES):
                return None
            slots.append(binding)
        elif kind == "array":
            offset = 0
            obj = binding
            if isinstance(binding, Cell):
                value = binding.value
                if not isinstance(value, Pointer):
                    return None
                obj, offset = value.obj, value.offset
            if not isinstance(obj, ArrayObject) or obj.is_struct:
                return None
            storage = machine.storage_of(obj)
            if not isinstance(storage, np.ndarray):
                return None
            written_before = seen_arrays.get(obj.object_id)
            if written_before is not None and (written_before or spec["written"]):
                return None  # two names alias a written array
            seen_arrays[obj.object_id] = bool(written_before) or spec["written"]
            slots.append((storage, offset, obj.shape))
        else:  # struct
            if not isinstance(binding, StructObject):
                return None
            for member in spec["members"]:
                if not isinstance(binding.fields.get(member), _SCALAR_TYPES):
                    return None
            slots.append(binding)
    return slots


@dataclass(frozen=True)
class _Header:
    """Canonical for-loop header: ``for (int var = init; var op bound; var += step)``."""

    var: str
    init_expr: A.Expr
    op: str
    bound_expr: A.Expr
    step: int


def _trip_count(lo: int, bound: int, op: str, step: int) -> int | None:
    """Iterations of the canonical loop; None when not statically finite."""
    if op == "!=":
        delta = bound - lo
        if step != 0 and delta % step == 0 and delta // step >= 0:
            return delta // step
        return None  # interpreted path would run away; let it
    if op == "<":
        span = bound - lo
    elif op == "<=":
        span = bound - lo + 1
    elif op == ">":
        span = lo - bound
    else:  # ">="
        span = lo - bound + 1
    if span <= 0:
        return 0
    mag = abs(step)
    return (span + mag - 1) // mag


# ===========================================================================
# The nest compiler
# ===========================================================================


class _NestCompiler:
    """Compiles one offload kernel's loop nest into a vector closure.

    Raises :class:`_Ineligible` (caught by :func:`try_vectorize`) the
    moment an unsupported construct appears; on success returns
    ``run(machine) -> bool`` where False means the runtime preflight
    declined and the caller must execute the interpreted body instead.
    """

    def __init__(self, interp: Any, directive: A.OMPExecutableDirective):
        self.interp = interp
        self.directive = directive
        self.pvar = ""
        self._depth = 0
        self._tainted: set[str] = set()
        self._assigned: set[str] = set()
        self._local_ids: set[int] = set()
        self._local_names: set[str] = set()
        self._nonlocal_names: set[str] = set()
        self._scalar_loads: set[str] = set()
        self._shared_written: set[str] = set()
        self._specs: list[dict[str, Any]] = []
        self._slot_map: dict[Any, dict[str, Any]] = {}
        self._array_reads: dict[int, list[list[A.Expr]]] = {}
        self._array_writes: dict[int, list[list[A.Expr]]] = {}
        #: Lane-invariance decisions taken mid-compile (loop bounds,
        #: lazy ternary/short-circuit guards).  Taint only grows, and a
        #: local can become lane-varying *after* the decision (assigned
        #: from a vector later in the same loop body — loop-carried),
        #: so every decision is re-checked against the final taint set
        #: in :meth:`_validate`.
        self._taint_checks: list[tuple[set[str], str]] = []
        #: Constant value ranges of in-scope sequential loop indices,
        #: for the store lane-disjointness check.
        self._loop_env: dict[str, tuple[int, int]] = {}
        #: Per-store disjointness obligations, checked against the real
        #: array shape at launch time (strides are runtime knowledge).
        self._store_checks: list[dict[str, Any]] = []

    # -- entry ----------------------------------------------------------

    def compile(self) -> Callable[[Any], bool]:
        for_stmt = _unwrap_for(self.directive.associated_stmt)
        if not isinstance(for_stmt, A.ForStmt):
            raise _Ineligible("kernel body is not a for loop")
        header = self._loop_header(for_stmt, parallel=True)
        self.pvar = header.var
        self._tainted = {header.var}
        self._local_ids = {
            d.node_id for d in for_stmt.walk_instances(A.VarDecl)
        }
        init_cl = self._compile_expr(header.init_expr, bound=True)
        bound_cl = self._compile_expr(header.bound_expr, bound=True)
        body = [self._compile_stmt(s) for s in _stmts_of(for_stmt.body)]
        self._validate()
        return self._build_runner(header, init_cl, bound_cl, body)

    def _validate(self) -> None:
        for refs, what in self._taint_checks:
            if refs & self._tainted:
                # The decision was taken before a later statement made
                # one of these names lane-varying (loop-carried value).
                raise _Ineligible(
                    f"{what} depends on a vectorized value"
                )
        for sidx, chains in self._array_writes.items():
            first = chains[0]
            for chain in chains[1:]:
                if not _chain_equal(first, chain):
                    raise _Ineligible("conflicting store subscripts")
            for chain in self._array_reads.get(sidx, []):
                if not _chain_equal(first, chain):
                    raise _Ineligible(
                        "array read/write subscript mismatch "
                        "(cross-iteration dependence)"
                    )
        clause_names: set[str] = set()
        for cls in (A.OMPFirstprivateClause, A.OMPPrivateClause,
                    A.OMPReductionClause):
            for clause in self.directive.clauses_of(cls):
                clause_names.update(clause.var_names())  # type: ignore[attr-defined]
        for clause in self.directive.map_clauses():
            clause_names.update(item.name for item in clause.items)
        shadowed = self._local_names & (self._nonlocal_names | clause_names)
        if shadowed:
            raise _Ineligible(
                f"kernel-local name shadows a mapped variable: "
                f"{sorted(shadowed)[0]!r}"
            )
        clash = self._shared_written & self._scalar_loads
        if clash:
            raise _Ineligible(
                f"shared scalar {sorted(clash)[0]!r} is both read and updated"
            )

    def _build_runner(
        self,
        header: _Header,
        init_cl: Callable[[_Ctx], Any],
        bound_cl: Callable[[_Ctx], Any],
        body: list[Callable[[_Ctx], None]],
    ) -> Callable[[Any], bool]:
        pvar, op, step = header.var, header.op, header.step
        specs = self._specs
        store_checks = self._store_checks

        def stores_disjoint(slots: list[Any]) -> bool:
            """Lane-disjointness of every store, against real strides.

            Two lanes i1 != i2 can hit the same flat element only when
            |pvar_coeff * stride * (i1 - i2)| <= span of the non-parallel
            subscript part; with |i1 - i2| >= |step| it suffices that the
            span stays strictly below |pvar_coeff * stride * step|.
            This is what makes ``b*HID + h`` (h < HID) and ``m[i][j]``
            (j within the row) safe while ``a[i + j]`` is not.
            """
            for check in store_checks:
                _, _, shape = slots[check["slot"]]
                ndims = check["ndims"]

                def stride_of(k: int) -> int:
                    if ndims == 1:
                        return 1  # _flat_index uses the raw index
                    stride = 1
                    for d in shape[k + 1:]:
                        stride *= d
                    return stride

                gap = check["pvar_coeff"] * stride_of(check["pvar_dim"])
                span = sum(
                    coeff * stride_of(k) * width
                    for k, coeff, width in check["spread_terms"]
                )
                if span >= gap * abs(step):
                    return False
            return True

        def run(machine: Any) -> bool:
            slots = _preflight(machine, specs)
            if slots is None:
                return False
            if not stores_disjoint(slots):
                return False
            ctx = _Ctx(machine)
            ctx.slots = slots
            lo = int(init_cl(ctx))
            bound = int(bound_cl(ctx))
            trips = _trip_count(lo, bound, op, step)
            if trips is None:
                return False

            profiler = machine.profiler

            def charge(n: int) -> None:
                machine.steps += n
                if machine.steps > machine.max_steps:
                    raise SimulationError(
                        f"simulation exceeded {machine.max_steps} steps "
                        f"(runaway loop?)"
                    )
                profiler.tick_device(n)

            ctx.charge = charge
            # Interpreted cost of the outer header: one tick for the
            # init DeclStmt plus trips+1 condition-check ticks.  Charged
            # before the index vector is even allocated, so max_steps
            # trips on runaway bounds without a giant arange.
            charge(1 + trips + 1)
            if trips:
                ctx.lanes = trips
                ctx.env[pvar] = lo + step * np.arange(trips, dtype=np.int64)
                for part in body:
                    part(ctx)
            return True

        return run

    # -- loop headers ---------------------------------------------------

    def _loop_header(self, stmt: A.ForStmt, *, parallel: bool) -> _Header:
        var = find_indexing_var(stmt)
        if var is None:
            raise _Ineligible("unrecognized loop increment")
        init = stmt.init
        if not isinstance(init, A.DeclStmt) or len(init.decls) != 1:
            raise _Ineligible("loop init must declare its index variable")
        decl = init.decls[0]
        if decl.name != var or decl.init is None:
            raise _Ineligible("loop init must initialize its index variable")
        qt = decl.qual_type
        if qt is None or not qt.is_integer:
            raise _Ineligible("loop index is not an integer")
        step = step_of(stmt.inc, var)
        if step == 0:
            raise _Ineligible("non-constant loop step")
        cond = _strip(stmt.cond) if stmt.cond is not None else None
        if not isinstance(cond, A.BinaryOperator):
            raise _Ineligible("unrecognized loop condition")
        lhs, rhs, op = _strip(cond.lhs), _strip(cond.rhs), cond.op
        if isinstance(rhs, A.DeclRefExpr) and rhs.name == var:
            lhs, rhs = rhs, lhs
            op = _COND_FLIP.get(op, op)
        if not (isinstance(lhs, A.DeclRefExpr) and lhs.name == var):
            raise _Ineligible("loop condition does not test the index")
        if op not in _CMPS:
            raise _Ineligible(f"unsupported loop condition {op!r}")
        if op != "!=" and (step > 0) != (op in ("<", "<=")):
            raise _Ineligible("loop step runs away from its bound")
        bound_refs = _ref_names(decl.init) | _ref_names(rhs)
        if bound_refs & self._tainted:
            raise _Ineligible("loop bound depends on a vectorized value")
        self._taint_checks.append((bound_refs, "loop bound"))
        self._local_names.add(var)
        self._assigned.add(var)
        return _Header(var, decl.init, op, rhs, step)

    # -- statements -----------------------------------------------------

    def _compile_stmt(self, stmt: A.Stmt) -> Callable[[_Ctx], None]:
        if isinstance(stmt, A.NullStmt):
            return lambda ctx: None
        if isinstance(stmt, A.CompoundStmt):
            parts = [self._compile_stmt(s) for s in stmt.stmts]

            def run_block(ctx: _Ctx) -> None:
                for part in parts:
                    part(ctx)

            return run_block
        if isinstance(stmt, A.DeclStmt):
            return self._compile_decl(stmt)
        if isinstance(stmt, A.ExprStmt):
            return self._compile_expr_stmt(stmt)
        if isinstance(stmt, A.ForStmt):
            return self._compile_for(stmt)
        raise _Ineligible(f"unsupported kernel statement {stmt.class_name}")

    def _compile_decl(self, stmt: A.DeclStmt) -> Callable[[_Ctx], None]:
        entries = []
        for decl in stmt.decls:
            qt = decl.qual_type
            if qt is None or qt.is_pointer or isinstance(
                qt.type, (ArrayType, StructType)
            ):
                raise _Ineligible("kernel-local aggregate or pointer")
            init_cl = (
                self._compile_expr(decl.init) if decl.init is not None else None
            )
            if decl.init is not None and _ref_names(decl.init) & self._tainted:
                self._tainted.add(decl.name)
            self._local_names.add(decl.name)
            self._assigned.add(decl.name)
            default = 0.0 if qt.is_floating else 0
            entries.append((decl.name, init_cl, _coercer(qt), default))

        def run(ctx: _Ctx) -> None:
            ctx.charge(ctx.lanes)
            for name, init_cl, coerce, default in entries:
                ctx.env[name] = (
                    coerce(init_cl(ctx)) if init_cl is not None else default
                )

        return run

    @staticmethod
    def _header_interval(header: _Header) -> tuple[int, int] | None:
        """Inclusive range the loop index can take, when fully constant."""
        lo = fold_integer_constant(header.init_expr)
        bound = fold_integer_constant(header.bound_expr)
        if lo is None or bound is None:
            return None
        if header.op == "<":
            ends = (lo, bound - 1)
        elif header.op == "<=":
            ends = (lo, bound)
        elif header.op == ">":
            ends = (bound + 1, lo)
        elif header.op == ">=":
            ends = (bound, lo)
        else:  # "!=" — endpoints still bound the walk
            ends = (lo, bound - header.step)
        return min(ends), max(ends)

    def _compile_for(self, stmt: A.ForStmt) -> Callable[[_Ctx], None]:
        header = self._loop_header(stmt, parallel=False)
        bound_refs = _ref_names(header.init_expr) | _ref_names(header.bound_expr)
        init_cl = self._compile_expr(header.init_expr, bound=True)
        bound_cl = self._compile_expr(header.bound_expr, bound=True)
        assigned_before = set(self._assigned)
        interval = self._header_interval(header)
        shadowed = self._loop_env.get(header.var)
        if interval is not None:
            self._loop_env[header.var] = interval
        self._depth += 1
        body = [self._compile_stmt(s) for s in _stmts_of(stmt.body)]
        self._depth -= 1
        if interval is not None:
            if shadowed is None:
                del self._loop_env[header.var]
            else:
                self._loop_env[header.var] = shadowed
        assigned_inside = self._assigned - assigned_before
        if assigned_inside & bound_refs:
            raise _Ineligible("loop bound mutated inside the loop body")
        if header.var in assigned_inside:
            raise _Ineligible("loop index reassigned inside the loop body")
        cmp = _CMPS[header.op]
        var, step = header.var, header.step

        def run(ctx: _Ctx) -> None:
            ctx.charge(ctx.lanes)  # the init DeclStmt, once per lane
            v = int(init_cl(ctx))
            bound = int(bound_cl(ctx))
            while True:
                ctx.charge(ctx.lanes)  # the condition-check tick per lane
                if not cmp(v, bound):
                    break
                ctx.env[var] = v
                for part in body:
                    part(ctx)
                v += step

        return run

    def _compile_expr_stmt(self, stmt: A.ExprStmt) -> Callable[[_Ctx], None]:
        expr = _strip(stmt.expr)
        if not isinstance(expr, A.BinaryOperator) or not expr.is_assignment:
            raise _Ineligible(
                f"unsupported kernel statement {expr.class_name}"
            )
        target = _strip(expr.lhs)
        if isinstance(target, A.DeclRefExpr):
            if self._is_local(target):
                return self._compile_local_assign(expr, target)
            return self._compile_shared_assign(expr, target)
        if isinstance(target, A.ArraySubscriptExpr):
            return self._compile_array_store(expr, target)
        raise _Ineligible(f"unsupported assignment target {target.class_name}")

    def _is_local(self, ref: A.DeclRefExpr) -> bool:
        return ref.decl is not None and ref.decl.node_id in self._local_ids

    # -- scalar assignments ---------------------------------------------

    def _compile_local_assign(
        self, expr: A.BinaryOperator, target: A.DeclRefExpr
    ) -> Callable[[_Ctx], None]:
        name = target.name
        if name == self.pvar:
            raise _Ineligible("assignment to the parallel index")
        rhs_cl = self._compile_expr(expr.rhs)
        coerce = _coercer(target.qual_type)
        if _ref_names(expr.rhs) & self._tainted or name in self._tainted:
            self._tainted.add(name)
        self._assigned.add(name)
        if expr.op == "=":
            def run_assign(ctx: _Ctx) -> None:
                ctx.charge(ctx.lanes)
                ctx.env[name] = coerce(rhs_cl(ctx))

            return run_assign
        fn = _VEC_BINOPS[_COMPOUND[expr.op]]

        def run_compound(ctx: _Ctx) -> None:
            ctx.charge(ctx.lanes)
            try:
                old = ctx.env[name]
            except KeyError:
                raise SimulationError(
                    f"use of uninitialized variable {name!r}"
                ) from None
            ctx.env[name] = coerce(fn(old, rhs_cl(ctx)))

        return run_compound

    def _compile_shared_assign(
        self, expr: A.BinaryOperator, target: A.DeclRefExpr
    ) -> Callable[[_Ctx], None]:
        name = target.name
        if self._depth != 0:
            raise _Ineligible("shared scalar updated inside an inner loop")
        if name in self._shared_written:
            raise _Ineligible(f"shared scalar {name!r} updated twice")
        self._shared_written.add(name)
        self._assigned.add(name)
        sidx = self._slot(target, "scalar")
        qt = target.qual_type
        coerce = _coercer(qt)

        if expr.op in ("+=", "-="):
            # Integer accumulation would need per-step truncation; floats
            # replay the exact sequential rounding through cumsum.
            if qt is None or not qt.is_floating:
                raise _Ineligible("non-float shared accumulation")
            if name in _ref_names(expr.rhs):
                raise _Ineligible("accumulation reads its own target")
            rhs_cl = self._compile_expr(expr.rhs)
            negate = expr.op == "-="

            def run_acc(ctx: _Ctx) -> None:
                ctx.charge(ctx.lanes)
                cell = ctx.slots[sidx]
                vec = _broadcast(rhs_cl(ctx), ctx.lanes)
                cell.value = _seq_sum(
                    float(cell.value), -vec if negate else vec
                )

            return run_acc

        if expr.op != "=":
            raise _Ineligible(
                f"unsupported shared-scalar update {expr.op!r}"
            )

        mode, other = self._match_minmax(expr.rhs, target)
        if mode is not None:
            if qt is None or not qt.is_floating:
                raise _Ineligible("non-float min/max reduction")
            if name in _ref_names(other):
                raise _Ineligible("min/max reduction reads its own target")
            other_cl = self._compile_expr(other)
            reduce_fn = (
                np.minimum.reduce if mode == "min" else np.maximum.reduce
            )
            pick = min if mode == "min" else max

            def run_minmax(ctx: _Ctx) -> None:
                ctx.charge(ctx.lanes)
                cell = ctx.slots[sidx]
                vec = _broadcast(other_cl(ctx), ctx.lanes)
                cell.value = float(pick(cell.value, float(reduce_fn(vec))))

            return run_minmax

        if name in _ref_names(expr.rhs):
            raise _Ineligible("shared scalar reads its own update")
        rhs_cl = self._compile_expr(expr.rhs)

        def run_last(ctx: _Ctx) -> None:
            ctx.charge(ctx.lanes)
            value = rhs_cl(ctx)
            if isinstance(value, np.ndarray):
                value = value[-1].item() if value.ndim else value.item()
            ctx.slots[sidx].value = coerce(value)

        return run_last

    def _match_minmax(
        self, rhs: A.Expr, target: A.DeclRefExpr
    ) -> tuple[str | None, A.Expr | None]:
        """Recognize ``t = fmin(t, e)`` and ``t = e < t ? e : t`` shapes."""
        rhs = _strip(rhs)
        if isinstance(rhs, A.CallExpr):
            mode = _MINMAX_CALLS.get(rhs.callee_name or "")
            if mode is not None and len(rhs.args) == 2:
                a, b = _strip(rhs.args[0]), _strip(rhs.args[1])
                a_is_t = _expr_equal(a, target)
                b_is_t = _expr_equal(b, target)
                if a_is_t != b_is_t:
                    return mode, b if a_is_t else a
            return None, None
        if not isinstance(rhs, A.ConditionalOperator):
            return None, None
        cond = _strip(rhs.cond)
        if not isinstance(cond, A.BinaryOperator) or cond.op not in (
            "<", "<=", ">", ">="
        ):
            return None, None
        a, b = _strip(cond.lhs), _strip(cond.rhs)
        t, f = _strip(rhs.true_expr), _strip(rhs.false_expr)
        if _expr_equal(t, a) and _expr_equal(f, b):
            true_is_lhs = True
        elif _expr_equal(t, b) and _expr_equal(f, a):
            true_is_lhs = False
        else:
            return None, None
        is_less = cond.op in ("<", "<=")
        mode = "min" if (true_is_lhs == is_less) else "max"
        a_is_t = _expr_equal(a, target)
        b_is_t = _expr_equal(b, target)
        if a_is_t == b_is_t:
            return None, None
        return mode, b if a_is_t else a

    # -- array stores ---------------------------------------------------

    def _subscript_chain(
        self, expr: A.ArraySubscriptExpr
    ) -> tuple[A.DeclRefExpr, list[A.Expr]]:
        indices: list[A.Expr] = []
        node: A.Expr = expr
        while isinstance(node, A.ArraySubscriptExpr):
            indices.append(node.index)
            node = _strip(node.base)
        indices.reverse()
        if not isinstance(node, A.DeclRefExpr):
            raise _Ineligible("unsupported subscript base")
        if self._is_local(node):
            raise _Ineligible("subscript of a kernel-local value")
        return node, indices

    def _compile_array_store(
        self, expr: A.BinaryOperator, target: A.ArraySubscriptExpr
    ) -> Callable[[_Ctx], None]:
        base, indices = self._subscript_chain(target)
        pvar_dim: int | None = None
        pvar_coeff = 0
        #: (dimension, |coeff|, value-range width) per non-parallel
        #: symbol — the ingredients of the lane-disjointness check.
        spread_terms: list[tuple[int, int, int]] = []
        for k, index in enumerate(indices):
            aff = _affine(index)
            if aff is None:
                raise _Ineligible("non-affine store subscript")
            for sym, coeff in aff[0].items():
                if coeff == 0:
                    continue
                if sym == self.pvar:
                    if pvar_dim is not None:
                        raise _Ineligible(
                            "parallel index in several store dimensions"
                        )
                    pvar_dim, pvar_coeff = k, coeff
                    continue
                if sym in self._tainted:
                    raise _Ineligible(
                        "store subscript depends on a vectorized local"
                    )
                interval = self._loop_env.get(sym)
                if interval is None:
                    # Only symbols with statically known ranges (inner
                    # loop indices with constant bounds) can be proven
                    # lane-disjoint.
                    raise _Ineligible(
                        "store subscript symbol with unknown range"
                    )
                spread_terms.append(
                    (k, abs(coeff), interval[1] - interval[0])
                )
        if pvar_dim is None:
            raise _Ineligible(
                "store subscript is not injective in the parallel index"
            )
        subscript_syms: set[str] = set()
        for index in indices:
            subscript_syms |= _ref_names(index)
        subscript_syms.discard(self.pvar)
        self._taint_checks.append((subscript_syms, "store subscript"))
        sidx = self._slot(base, "array", written=True)
        self._store_checks.append({
            "slot": sidx,
            "ndims": len(indices),
            "pvar_dim": pvar_dim,
            "pvar_coeff": abs(pvar_coeff),
            "spread_terms": spread_terms,
        })
        self._array_writes.setdefault(sidx, []).append(indices)
        idx_cls = [self._compile_expr(ix) for ix in indices]
        rhs_cl = self._compile_expr(expr.rhs)
        fn = None if expr.op == "=" else _VEC_BINOPS[_COMPOUND[expr.op]]

        def run(ctx: _Ctx) -> None:
            ctx.charge(ctx.lanes)
            storage, offset, shape = ctx.slots[sidx]
            pos = offset + _flat_index([c(ctx) for c in idx_cls], shape)
            if fn is None:
                storage[pos] = rhs_cl(ctx)
            else:
                storage[pos] = fn(_widen(storage[pos]), rhs_cl(ctx))

        return run

    # -- slots ----------------------------------------------------------

    def _slot(
        self, ref: A.DeclRefExpr, kind: str, *, written: bool = False
    ) -> int:
        key = (
            kind,
            ref.decl.node_id if ref.decl is not None else f"name:{ref.name}",
        )
        spec = self._slot_map.get(key)
        if spec is None:
            spec = {
                "kind": kind,
                "getter": self.interp._binding_getter(ref),
                "name": ref.name,
                "written": False,
                "members": set(),
                "index": len(self._specs),
            }
            self._slot_map[key] = spec
            self._specs.append(spec)
        spec["written"] = spec["written"] or written
        self._nonlocal_names.add(ref.name)
        return spec["index"]

    # -- expressions ----------------------------------------------------

    def _compile_expr(
        self, expr: A.Expr, *, bound: bool = False, guarded: bool = False
    ) -> Callable[[_Ctx], Any]:
        expr = _strip(expr)
        folded = fold_integer_constant(expr)
        if folded is not None:
            return lambda ctx: folded
        if isinstance(expr, A.IntegerLiteral) or isinstance(
            expr, A.FloatingLiteral
        ) or isinstance(expr, A.CharacterLiteral):
            value = expr.value
            return lambda ctx: value
        if isinstance(expr, A.DeclRefExpr):
            return self._compile_ref(expr, bound=bound)
        if isinstance(expr, A.ArraySubscriptExpr):
            if bound:
                raise _Ineligible("array access in a loop bound")
            if guarded:
                # The interpreter would only index the selected lanes;
                # an out-of-range index on a discarded lane must not
                # fault here where it would not fault there.
                raise _Ineligible(
                    "array access under a lane-varying condition"
                )
            return self._compile_array_load(expr)
        if isinstance(expr, A.MemberExpr):
            return self._compile_member(expr)
        if isinstance(expr, A.BinaryOperator):
            return self._compile_binop(expr, bound=bound, guarded=guarded)
        if isinstance(expr, A.UnaryOperator):
            return self._compile_unop(expr, bound=bound, guarded=guarded)
        if isinstance(expr, A.ConditionalOperator):
            # A lane-invariant condition keeps the interpreter's lazy
            # branch selection at runtime; a lane-varying one means both
            # branches evaluate for every lane, so anything that could
            # fault on a discarded lane (division, indexing) is out.
            cond_refs = _ref_names(expr.cond)
            branch_guarded = guarded or bool(cond_refs & self._tainted)
            if not branch_guarded:
                self._taint_checks.append((cond_refs, "branch condition"))
            cond = self._compile_expr(expr.cond, bound=bound, guarded=guarded)
            true_cl = self._compile_expr(
                expr.true_expr, bound=bound, guarded=branch_guarded
            )
            false_cl = self._compile_expr(
                expr.false_expr, bound=bound, guarded=branch_guarded
            )

            def run_cond(ctx: _Ctx) -> Any:
                c = cond(ctx)
                if not isinstance(c, np.ndarray):
                    return true_cl(ctx) if c else false_cl(ctx)
                return np.where(c != 0, true_cl(ctx), false_cl(ctx))

            return run_cond
        if isinstance(expr, A.CStyleCastExpr):
            if expr.target_type.is_pointer:
                raise _Ineligible("pointer cast in kernel")
            operand = self._compile_expr(
                expr.operand, bound=bound, guarded=guarded
            )
            coerce = _coercer(expr.target_type)
            return lambda ctx: coerce(operand(ctx))
        if isinstance(expr, A.CallExpr):
            raise _Ineligible(
                f"call to {expr.callee_name or '<indirect>'!r} in kernel"
            )
        raise _Ineligible(f"unsupported kernel expression {expr.class_name}")

    def _compile_ref(
        self, ref: A.DeclRefExpr, *, bound: bool
    ) -> Callable[[_Ctx], Any]:
        if isinstance(ref.decl, EnumConstantDecl):
            value = ref.decl.value
            return lambda ctx: value
        if isinstance(ref.decl, A.FunctionDecl):
            raise _Ineligible("function reference in kernel")
        name = ref.name
        if self._is_local(ref):
            if bound and name in self._tainted:
                raise _Ineligible("loop bound depends on a vectorized value")

            def load_local(ctx: _Ctx) -> Any:
                try:
                    return ctx.env[name]
                except KeyError:
                    raise SimulationError(
                        f"use of uninitialized variable {name!r}"
                    ) from None

            return load_local
        qt = ref.qual_type
        if qt is not None and (
            qt.is_pointer or isinstance(qt.type, (ArrayType, StructType))
        ):
            raise _Ineligible(f"non-scalar value {name!r} used as a scalar")
        sidx = self._slot(ref, "scalar")
        self._scalar_loads.add(name)
        return lambda ctx: ctx.slots[sidx].value

    def _compile_array_load(
        self, expr: A.ArraySubscriptExpr
    ) -> Callable[[_Ctx], Any]:
        base, indices = self._subscript_chain(expr)
        sidx = self._slot(base, "array")
        self._array_reads.setdefault(sidx, []).append(indices)
        idx_cls = [self._compile_expr(ix) for ix in indices]

        def load(ctx: _Ctx) -> Any:
            storage, offset, shape = ctx.slots[sidx]
            return _widen(
                storage[offset + _flat_index([c(ctx) for c in idx_cls], shape)]
            )

        return load

    def _compile_member(self, expr: A.MemberExpr) -> Callable[[_Ctx], Any]:
        base = _strip(expr.base)
        if expr.is_arrow:
            raise _Ineligible("pointer member access in kernel")
        if not isinstance(base, A.DeclRefExpr) or self._is_local(base):
            raise _Ineligible("unsupported member access base")
        member = expr.member
        sidx = self._slot(base, "struct")
        self._specs[sidx]["members"].add(member)
        return lambda ctx: ctx.slots[sidx].fields[member]

    def _compile_binop(
        self, expr: A.BinaryOperator, *, bound: bool, guarded: bool = False
    ) -> Callable[[_Ctx], Any]:
        op = expr.op
        if expr.is_assignment:
            raise _Ineligible("assignment inside a kernel expression")
        if op == ",":
            raise _Ineligible("comma expression in kernel")
        if guarded and op in ("/", "%"):
            # Under a lane-varying guard the interpreter would skip the
            # division on discarded lanes; evaluating all lanes could
            # fault (zero divisor) where the interpreted run succeeds.
            raise _Ineligible("division under a lane-varying condition")
        lhs = self._compile_expr(expr.lhs, bound=bound, guarded=guarded)
        # A lane-varying left side of &&/|| defeats short-circuiting, so
        # the right side becomes guarded like a ternary branch.
        rhs_guarded = guarded
        if op in ("&&", "||"):
            lhs_refs = _ref_names(expr.lhs)
            if lhs_refs & self._tainted:
                rhs_guarded = True
            elif not guarded:
                self._taint_checks.append((lhs_refs, "short-circuit guard"))
        rhs = self._compile_expr(expr.rhs, bound=bound, guarded=rhs_guarded)
        if op in ("&&", "||"):
            is_and = op == "&&"

            def run_logical(ctx: _Ctx) -> Any:
                a = lhs(ctx)
                if not isinstance(a, np.ndarray):
                    # Lane-invariant left side keeps the interpreter's
                    # short-circuit (guards div-by-zero on the right).
                    if bool(a) != is_and:
                        return int(not is_and)
                    b = rhs(ctx)
                    if not isinstance(b, np.ndarray):
                        return int(bool(b))
                    return (b != 0).astype(np.int64)
                b = rhs(ctx)
                mask_a = a != 0
                mask_b = (b != 0) if isinstance(b, np.ndarray) else bool(b)
                mask = (mask_a & mask_b) if is_and else (mask_a | mask_b)
                return mask.astype(np.int64)

            return run_logical
        fn = _VEC_BINOPS.get(op)
        if fn is None:
            raise _Ineligible(f"unsupported operator {op!r} in kernel")
        return lambda ctx: fn(lhs(ctx), rhs(ctx))

    def _compile_unop(
        self, expr: A.UnaryOperator, *, bound: bool, guarded: bool = False
    ) -> Callable[[_Ctx], Any]:
        op = expr.op
        if op in ("++", "--", "&", "*"):
            raise _Ineligible(f"unsupported unary operator {op!r} in kernel")
        operand = self._compile_expr(expr.operand, bound=bound, guarded=guarded)
        if op == "-":
            return lambda ctx: -operand(ctx)
        if op == "+":
            return operand
        if op == "!":
            def run_not(ctx: _Ctx) -> Any:
                v = operand(ctx)
                if isinstance(v, np.ndarray):
                    return (v == 0).astype(np.int64)
                return int(not v)

            return run_not
        if op == "~":
            def run_inv(ctx: _Ctx) -> Any:
                v = operand(ctx)
                if isinstance(v, np.ndarray):
                    return ~_as_int(v)
                return ~int(v)

            return run_inv
        raise _Ineligible(f"unsupported unary operator {op!r} in kernel")


# ===========================================================================
# Public entry point
# ===========================================================================


def try_vectorize(
    interp: Any, stmt: A.OMPExecutableDirective
) -> tuple[Callable[[Any], bool] | None, str | None]:
    """Compile ``stmt``'s loop nest into a vector closure, if eligible.

    Returns ``(runner, None)`` on success — ``runner(machine)`` executes
    the nest and returns True, or returns False when the runtime
    preflight declines (the caller then runs the interpreted body) —
    or ``(None, reason)`` when the nest is statically ineligible.
    """
    try:
        return _NestCompiler(interp, stmt).compile(), None
    except _Ineligible as exc:
        return None, str(exc)
    except Exception as exc:  # noqa: BLE001 - fallback is always correct;
        # a vectorizer bug must never take down a simulation the
        # interpreter could finish.
        return None, f"vectorizer error: {exc!r}"
