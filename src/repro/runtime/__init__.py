"""Simulated OpenMP offload runtime (GPU + CUDA + nsys substitute).

The re-exports below resolve lazily (PEP 562): ``repro.runtime`` sits
on the CLI's platform-flag path, and an eager ``from .interp import
...`` would drag numpy and the whole simulator into every cold start —
including ``ompdart --version`` and parse-only runs, whose startup
budget is pinned by tests.  Importing a *submodule* directly (``from
repro.runtime.platform import DEFAULT_PLATFORM``) only executes this
docstring and the table, never the siblings.
"""

__all__ = [
    "LCG",
    "c_printf",
    "A100_PCIE4",
    "CostModel",
    "DEFAULT_PLATFORM",
    "PLATFORMS",
    "Platform",
    "get_platform",
    "list_platforms",
    "platform_table",
    "register_platform",
    "resolve_platform",
    "DeviceDataEnvironment",
    "DeviceRuntimeError",
    "Interpreter",
    "Machine",
    "SimulationError",
    "SimulationResult",
    "run_simulation",
    "MemcpyRecord",
    "Profiler",
    "TransferStats",
    "ArrayObject",
    "Cell",
    "Pointer",
    "StructObject",
    "NULL",
    "try_vectorize",
]

#: public name -> the submodule that defines it.
_EXPORTS = {
    "LCG": "builtins",
    "c_printf": "builtins",
    "A100_PCIE4": "costmodel",
    "CostModel": "costmodel",
    "DEFAULT_PLATFORM": "platform",
    "PLATFORMS": "platform",
    "Platform": "platform",
    "get_platform": "platform",
    "list_platforms": "platform",
    "platform_table": "platform",
    "register_platform": "platform",
    "resolve_platform": "platform",
    "DeviceDataEnvironment": "device",
    "DeviceRuntimeError": "device",
    "Interpreter": "interp",
    "Machine": "interp",
    "SimulationError": "interp",
    "SimulationResult": "interp",
    "run_simulation": "interp",
    "MemcpyRecord": "profiler",
    "Profiler": "profiler",
    "TransferStats": "profiler",
    "NULL": "values",
    "ArrayObject": "values",
    "Cell": "values",
    "Pointer": "values",
    "StructObject": "values",
    "try_vectorize": "vectorize",
}


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(
            f"module 'repro.runtime' has no attribute {name!r}"
        )
    from importlib import import_module

    value = getattr(import_module(f".{submodule}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
