"""Simulated OpenMP offload runtime (GPU + CUDA + nsys substitute)."""

from .builtins import LCG, c_printf  # noqa: F401
from .costmodel import A100_PCIE4, CostModel  # noqa: F401
from .device import DeviceDataEnvironment, DeviceRuntimeError  # noqa: F401
from .platform import (  # noqa: F401
    DEFAULT_PLATFORM,
    PLATFORMS,
    Platform,
    get_platform,
    list_platforms,
    platform_table,
    register_platform,
    resolve_platform,
)
from .interp import (  # noqa: F401
    Interpreter,
    Machine,
    SimulationError,
    SimulationResult,
    run_simulation,
)
from .profiler import MemcpyRecord, Profiler, TransferStats  # noqa: F401
from .values import NULL, ArrayObject, Cell, Pointer, StructObject  # noqa: F401
from .vectorize import try_vectorize  # noqa: F401

__all__ = [
    "LCG",
    "c_printf",
    "A100_PCIE4",
    "CostModel",
    "DEFAULT_PLATFORM",
    "PLATFORMS",
    "Platform",
    "get_platform",
    "list_platforms",
    "platform_table",
    "register_platform",
    "resolve_platform",
    "DeviceDataEnvironment",
    "DeviceRuntimeError",
    "Interpreter",
    "Machine",
    "SimulationError",
    "SimulationResult",
    "run_simulation",
    "MemcpyRecord",
    "Profiler",
    "TransferStats",
    "ArrayObject",
    "Cell",
    "Pointer",
    "StructObject",
    "NULL",
    "try_vectorize",
]
