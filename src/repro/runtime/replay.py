"""Sequential scalar replay: the unit-slice degenerate wavefront.

Kernels whose loop-carried dependences leave no parallelism at all —
hotspot's in-place stencil reads ``temp[i-1]`` *after* lane ``i-1``
updated it, a distance-1 chain — degenerate to wavefront slices of one
lane each.  Executing those through per-slice NumPy expressions would
trade the interpreter's closure overhead for NumPy scalar-op overhead
and win nothing, so this module compiles the nest into plain-Python
closures instead and replays it in exact sequential order:

* array storage is materialized to Python lists once per launch
  (``tolist`` widens float32/int elements exactly the way the
  interpreter's per-element ``.item()`` does) and written back once at
  the end — every intermediate read sees every earlier write, like the
  interpreter;
* arithmetic reuses the interpreter's own operator table and math
  builtins, so each lane performs the same IEEE operation sequence on
  the same Python scalars — bit-identical by identity, not by analysis;
* the step ledger is charged through a local counter with the same
  tick placement as the interpreter (one tick per declaration,
  expression statement, ``if``, and loop condition check) and flushed
  to the profiler in one call, preserving ``max_steps`` semantics
  while skipping the per-tick attribute traffic that dominates the
  interpreted path.

The result is a ~5-20x faster executor that is order-exact by
construction, needing no dependence analysis at all — the safety net
that lets every remaining corpus kernel leave the interpreter.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..frontend import ast_nodes as A
from ..frontend.ctypes_ import ArrayType, StructType
from ..frontend.parser import EnumConstantDecl, fold_integer_constant
from .interp import _BINOPS, SimulationError, _coerce_for

__all__ = ["compile_replay"]


def _ineligible(reason: str) -> Exception:
    from .vectorize import _Ineligible

    return _Ineligible(reason)


def _strip(expr: A.Expr) -> A.Expr:
    while isinstance(expr, A.ParenExpr):
        expr = expr.inner
    return expr


def _stmts_of(body: A.Stmt | None) -> list[A.Stmt]:
    if body is None:
        return []
    if isinstance(body, A.CompoundStmt):
        return list(body.stmts)
    return [body]


class _RCtx:
    """Run state: scalar environment, materialized slots, tick counter."""

    __slots__ = ("env", "slots", "n", "budget", "max_steps")

    def __init__(self) -> None:
        self.env: dict[str, Any] = {}
        self.slots: list[Any] = []
        self.n = 0
        self.budget = 0
        self.max_steps = 0

    def tick(self) -> None:
        self.n += 1
        if self.n > self.budget:
            raise SimulationError(
                f"simulation exceeded {self.max_steps} steps (runaway loop?)"
            )


def _elem_codec(dtype: np.dtype) -> Callable[[Any], Any] | None:
    """Store-side conversion matching what numpy element assignment
    would do to the same Python scalar (truncation, range checks,
    float32 narrowing) — the lists must stay bit-faithful mirrors."""
    kind = dtype.kind
    if kind == "f":
        if dtype == np.float64:
            return float
        if dtype == np.float32:
            return lambda v: float(np.float32(v))
        return None
    if kind in "iu":
        info = np.iinfo(dtype)
        lo, hi = int(info.min), int(info.max)

        def to_int(v: Any) -> int:
            i = int(v)
            if i < lo or i > hi:
                raise OverflowError(
                    "Python int too large to convert to C long"
                )
            return i

        return to_int
    return None


class _ReplayCompiler:
    """Compiles one kernel's associated statement for sequential replay."""

    def __init__(self, interp: Any, directive: A.OMPExecutableDirective):
        self.interp = interp
        self.directive = directive
        self._math = interp._math
        self._specs: list[dict[str, Any]] = []
        self._slot_map: dict[Any, dict[str, Any]] = {}
        self._local_ids: set[int] = set()
        self._local_names: set[str] = set()
        self._nonlocal_names: set[str] = set()

    # -- entry ----------------------------------------------------------

    def compile(self) -> Callable[[Any], bool]:
        stmt = self.directive.associated_stmt
        if stmt is None:
            raise _ineligible("kernel has no associated statement")
        self._local_ids = {
            d.node_id for d in stmt.walk_instances(A.VarDecl)
        }
        body = self._compile_stmt(stmt)
        self._validate()
        return self._build_runner(body)

    def _validate(self) -> None:
        clause_names: set[str] = set()
        for cls in (A.OMPFirstprivateClause, A.OMPPrivateClause,
                    A.OMPReductionClause):
            for clause in self.directive.clauses_of(cls):
                clause_names.update(clause.var_names())  # type: ignore[attr-defined]
        for clause in self.directive.map_clauses():
            clause_names.update(item.name for item in clause.items)
        shadowed = self._local_names & (self._nonlocal_names | clause_names)
        if shadowed:
            raise _ineligible(
                f"kernel-local name shadows a mapped variable: "
                f"{sorted(shadowed)[0]!r}"
            )

    def _build_runner(
        self, body: Callable[[_RCtx], None]
    ) -> Callable[[Any], bool]:
        from .vectorize import _preflight

        specs = self._specs

        def run(machine: Any) -> bool:
            slots = _preflight(machine, specs)
            if slots is None:
                return False
            rslots: list[Any] = []
            written: list[tuple[np.ndarray, list]] = []
            for spec, slot in zip(specs, slots):
                if spec["kind"] == "array":
                    storage, offset, shape = slot
                    codec = _elem_codec(storage.dtype)
                    if codec is None:
                        return False
                    data = storage.tolist()
                    rslots.append((data, offset, shape, codec))
                    if spec["written"]:
                        written.append((storage, data))
                else:
                    rslots.append(slot)
            ctx = _RCtx()
            ctx.slots = rslots
            ctx.max_steps = machine.max_steps
            ctx.budget = machine.max_steps - machine.steps
            body(ctx)
            machine.steps += ctx.n
            if machine.on_device:
                machine.profiler.tick_device(ctx.n)
            else:
                machine.profiler.tick_host(ctx.n)
            for storage, data in written:
                storage[:] = data
            return True

        return run

    # -- slots (shared layout with the vector preflight) -----------------

    def _slot(
        self, ref: A.DeclRefExpr, kind: str, *, written: bool = False
    ) -> int:
        key = (
            kind,
            ref.decl.node_id if ref.decl is not None else f"name:{ref.name}",
        )
        spec = self._slot_map.get(key)
        if spec is None:
            spec = {
                "kind": kind,
                "getter": self.interp._binding_getter(ref),
                "name": ref.name,
                "written": False,
                "members": set(),
                "index": len(self._specs),
            }
            self._slot_map[key] = spec
            self._specs.append(spec)
        spec["written"] = spec["written"] or written
        self._nonlocal_names.add(ref.name)
        return spec["index"]

    def _is_local(self, ref: A.DeclRefExpr) -> bool:
        return ref.decl is not None and ref.decl.node_id in self._local_ids

    # -- statements -----------------------------------------------------

    def _compile_stmt(self, stmt: A.Stmt | None) -> Callable[[_RCtx], None]:
        """Compile one statement.

        Closures for branch-free statements carry two attributes the
        loop compiler exploits: ``work`` (the statement minus its tick)
        and ``static_ticks`` (its constant tick count), letting a
        straight-line loop body charge one batched tick per iteration
        instead of one attribute round-trip per statement.
        """
        if stmt is None or isinstance(stmt, A.NullStmt):
            fn = lambda ctx: None  # noqa: E731
            fn.work = fn
            fn.static_ticks = 0
            return fn
        if isinstance(stmt, A.CompoundStmt):
            parts = [self._compile_stmt(s) for s in stmt.stmts]

            def run_block(ctx: _RCtx) -> None:
                for part in parts:
                    part(ctx)

            ticks = [getattr(p, "static_ticks", None) for p in parts]
            if all(t is not None for t in ticks):
                works = [p.work for p in parts]

                def block_work(ctx: _RCtx) -> None:
                    for work in works:
                        work(ctx)

                run_block.work = block_work
                run_block.static_ticks = sum(ticks)
            return run_block
        if isinstance(stmt, A.DeclStmt):
            return self._compile_decl(stmt)
        if isinstance(stmt, A.ExprStmt):
            expr = self._compile_expr(stmt.expr)

            def run_expr(ctx: _RCtx) -> None:
                ctx.tick()
                expr(ctx)

            run_expr.work = lambda ctx: expr(ctx)
            run_expr.static_ticks = 1
            return run_expr
        if isinstance(stmt, A.IfStmt):
            cond = self._compile_expr(stmt.cond)
            then_cl = self._compile_stmt(stmt.then_branch)
            else_cl = (
                self._compile_stmt(stmt.else_branch)
                if stmt.else_branch is not None else None
            )

            def run_if(ctx: _RCtx) -> None:
                ctx.tick()
                if cond(ctx):
                    then_cl(ctx)
                elif else_cl is not None:
                    else_cl(ctx)

            return run_if
        if isinstance(stmt, A.ForStmt):
            init = (
                self._compile_stmt(stmt.init) if stmt.init is not None else None
            )
            cond = (
                self._compile_expr(stmt.cond) if stmt.cond is not None else None
            )
            inc = (
                self._compile_expr(stmt.inc) if stmt.inc is not None else None
            )
            body = self._compile_stmt(stmt.body)
            body_ticks = getattr(body, "static_ticks", None)
            if body_ticks is not None and cond is not None:
                # Branch-free body: one batched charge per iteration
                # (condition tick + the body's constant tick count)
                # replaces per-statement ledger traffic.  The final
                # failing condition check still ticks on its own.
                work = body.work

                def run_for_batched(ctx: _RCtx) -> None:
                    if init is not None:
                        init(ctx)
                    while True:
                        ctx.tick()  # the condition-check tick
                        if not cond(ctx):
                            return
                        n = ctx.n + body_ticks
                        if n > ctx.budget:
                            ctx.n = n
                            raise SimulationError(
                                f"simulation exceeded {ctx.max_steps} "
                                f"steps (runaway loop?)"
                            )
                        ctx.n = n
                        work(ctx)
                        if inc is not None:
                            inc(ctx)

                return run_for_batched

            def run_for(ctx: _RCtx) -> None:
                if init is not None:
                    init(ctx)
                while True:
                    ctx.tick()
                    if cond is not None and not cond(ctx):
                        return
                    body(ctx)
                    if inc is not None:
                        inc(ctx)

            return run_for
        raise _ineligible(f"unsupported kernel statement {stmt.class_name}")

    def _compile_decl(self, stmt: A.DeclStmt) -> Callable[[_RCtx], None]:
        entries = []
        for decl in stmt.decls:
            qt = decl.qual_type
            if qt is None or qt.is_pointer or isinstance(
                qt.type, (ArrayType, StructType)
            ):
                raise _ineligible("kernel-local aggregate or pointer")
            init_cl = (
                self._compile_expr(decl.init) if decl.init is not None else None
            )
            self._local_names.add(decl.name)
            default = 0.0 if qt.is_floating else 0
            entries.append((decl.name, init_cl, _coerce_for(qt), default))

        def run(ctx: _RCtx) -> None:
            ctx.tick()
            for name, init_cl, coerce, default in entries:
                ctx.env[name] = (
                    coerce(init_cl(ctx)) if init_cl is not None else default
                )

        def work(ctx: _RCtx) -> None:
            for name, init_cl, coerce, default in entries:
                ctx.env[name] = (
                    coerce(init_cl(ctx)) if init_cl is not None else default
                )

        run.work = work
        run.static_ticks = 1
        return run

    # -- lvalues ---------------------------------------------------------

    def _compile_lvalue(
        self, expr: A.Expr
    ) -> tuple[Callable[[_RCtx], Any], Callable[[_RCtx, Any], None]]:
        expr = _strip(expr)
        if isinstance(expr, A.DeclRefExpr):
            name = expr.name
            if self._is_local(expr):
                coerce = _coerce_for(expr.qual_type)

                def load_local(ctx: _RCtx) -> Any:
                    try:
                        return ctx.env[name]
                    except KeyError:
                        raise SimulationError(
                            f"use of uninitialized variable {name!r}"
                        ) from None

                def store_local(ctx: _RCtx, value: Any) -> None:
                    ctx.env[name] = coerce(value)

                return load_local, store_local
            sidx = self._slot(expr, "scalar", written=True)
            coerce = _coerce_for(expr.qual_type)

            def load_cell(ctx: _RCtx) -> Any:
                return ctx.slots[sidx].value

            def store_cell(ctx: _RCtx, value: Any) -> None:
                ctx.slots[sidx].value = coerce(value)

            return load_cell, store_cell
        if isinstance(expr, A.ArraySubscriptExpr):
            return self._subscript_lvalue(expr)
        raise _ineligible(f"unsupported assignment target {expr.class_name}")

    def _subscript_lvalue(self, expr: A.ArraySubscriptExpr):
        indices: list[Callable[[_RCtx], Any]] = []
        node: A.Expr = expr
        while isinstance(node, A.ArraySubscriptExpr):
            indices.append(self._compile_expr(node.index))
            node = _strip(node.base)
        if not isinstance(node, A.DeclRefExpr) or self._is_local(node):
            raise _ineligible("unsupported subscript base")
        indices.reverse()
        sidx = self._slot(node, "array", written=True)
        ndims = len(indices)

        def resolve(ctx: _RCtx) -> tuple[list, int, Callable[[Any], Any]]:
            data, offset, shape, codec = ctx.slots[sidx]
            if ndims == 1:
                flat = int(indices[0](ctx))
            else:
                flat = 0
                for k, ix in enumerate(indices):
                    stride = 1
                    for d in shape[k + 1:]:
                        stride *= d
                    flat += int(ix(ctx)) * stride
            return data, offset + flat, codec

        def load(ctx: _RCtx) -> Any:
            data, pos, _ = resolve(ctx)
            return data[pos]

        def store(ctx: _RCtx, value: Any) -> None:
            data, pos, codec = resolve(ctx)
            data[pos] = codec(value)

        return load, store

    # -- expressions ----------------------------------------------------

    def _compile_expr(self, expr: A.Expr) -> Callable[[_RCtx], Any]:
        expr = _strip(expr)
        folded = fold_integer_constant(expr)
        if folded is not None:
            return lambda ctx: folded
        if isinstance(expr, (A.IntegerLiteral, A.FloatingLiteral,
                             A.CharacterLiteral)):
            value = expr.value
            return lambda ctx: value
        if isinstance(expr, A.DeclRefExpr):
            return self._compile_ref(expr)
        if isinstance(expr, A.ArraySubscriptExpr):
            load, _ = self._subscript_lvalue(expr)
            return load
        if isinstance(expr, A.MemberExpr):
            return self._compile_member(expr)
        if isinstance(expr, A.BinaryOperator):
            return self._compile_binop(expr)
        if isinstance(expr, A.UnaryOperator):
            return self._compile_unop(expr)
        if isinstance(expr, A.ConditionalOperator):
            cond = self._compile_expr(expr.cond)
            t_cl = self._compile_expr(expr.true_expr)
            f_cl = self._compile_expr(expr.false_expr)
            return lambda ctx: t_cl(ctx) if cond(ctx) else f_cl(ctx)
        if isinstance(expr, A.CStyleCastExpr):
            if expr.target_type.is_pointer:
                raise _ineligible("pointer cast in kernel")
            operand = self._compile_expr(expr.operand)
            coerce = _coerce_for(expr.target_type)
            return lambda ctx: coerce(operand(ctx))
        if isinstance(expr, A.CallExpr):
            name = expr.callee_name or "<indirect>"
            math_fn = self._math.get(name)
            if math_fn is None:
                raise _ineligible(f"call to {name!r} in kernel")
            arg_cls = [self._compile_expr(a) for a in expr.args]
            return lambda ctx: math_fn(*(c(ctx) for c in arg_cls))
        raise _ineligible(f"unsupported kernel expression {expr.class_name}")

    def _compile_ref(self, ref: A.DeclRefExpr) -> Callable[[_RCtx], Any]:
        if isinstance(ref.decl, EnumConstantDecl):
            value = ref.decl.value
            return lambda ctx: value
        if isinstance(ref.decl, A.FunctionDecl):
            raise _ineligible("function reference in kernel")
        name = ref.name
        if self._is_local(ref):
            def load_local(ctx: _RCtx) -> Any:
                try:
                    return ctx.env[name]
                except KeyError:
                    raise SimulationError(
                        f"use of uninitialized variable {name!r}"
                    ) from None

            return load_local
        qt = ref.qual_type
        if qt is not None and (
            qt.is_pointer or isinstance(qt.type, (ArrayType, StructType))
        ):
            raise _ineligible(f"non-scalar value {name!r} used as a scalar")
        sidx = self._slot(ref, "scalar")
        return lambda ctx: ctx.slots[sidx].value

    def _compile_member(self, expr: A.MemberExpr) -> Callable[[_RCtx], Any]:
        base = _strip(expr.base)
        if expr.is_arrow:
            raise _ineligible("pointer member access in kernel")
        if not isinstance(base, A.DeclRefExpr) or self._is_local(base):
            raise _ineligible("unsupported member access base")
        member = expr.member
        sidx = self._slot(base, "struct")
        self._specs[sidx]["members"].add(member)
        return lambda ctx: ctx.slots[sidx].fields[member]

    def _compile_binop(self, expr: A.BinaryOperator) -> Callable[[_RCtx], Any]:
        op = expr.op
        if op == ",":
            raise _ineligible("comma expression in kernel")
        if op == "&&":
            lhs = self._compile_expr(expr.lhs)
            rhs = self._compile_expr(expr.rhs)
            return lambda ctx: int(bool(lhs(ctx)) and bool(rhs(ctx)))
        if op == "||":
            lhs = self._compile_expr(expr.lhs)
            rhs = self._compile_expr(expr.rhs)
            return lambda ctx: int(bool(lhs(ctx)) or bool(rhs(ctx)))
        if expr.is_assignment:
            load, store = self._compile_lvalue(expr.lhs)
            rhs = self._compile_expr(expr.rhs)
            if op == "=":
                def run_assign(ctx: _RCtx) -> Any:
                    value = rhs(ctx)
                    store(ctx, value)
                    return value

                return run_assign
            base_op = op[:-1]
            fn = _BINOPS[base_op]

            def run_compound(ctx: _RCtx) -> Any:
                value = fn(load(ctx), rhs(ctx))
                store(ctx, value)
                return value

            return run_compound
        fn = _BINOPS.get(op)
        if fn is None:
            raise _ineligible(f"unsupported operator {op!r} in kernel")
        lhs = self._compile_expr(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        return lambda ctx: fn(lhs(ctx), rhs(ctx))

    def _compile_unop(self, expr: A.UnaryOperator) -> Callable[[_RCtx], Any]:
        op = expr.op
        if op in ("&", "*"):
            raise _ineligible(f"unsupported unary operator {op!r} in kernel")
        if op in ("++", "--"):
            load, store = self._compile_lvalue(expr.operand)
            delta = 1 if op == "++" else -1
            prefix = expr.is_prefix

            def run_incdec(ctx: _RCtx) -> Any:
                old = load(ctx)
                new = old + delta
                store(ctx, new)
                return new if prefix else old

            return run_incdec
        operand = self._compile_expr(expr.operand)
        if op == "-":
            return lambda ctx: -operand(ctx)
        if op == "+":
            return operand
        if op == "!":
            return lambda ctx: int(not operand(ctx))
        if op == "~":
            return lambda ctx: ~int(operand(ctx))
        raise _ineligible(f"unsupported unary operator {op!r} in kernel")


def compile_replay(
    interp: Any, stmt: A.OMPExecutableDirective
) -> Callable[[Any], bool]:
    """Compile ``stmt`` for sequential scalar replay.

    Returns ``run(machine) -> bool``; False means the launch-time
    binding resolution declined (pointer/struct shapes the lists cannot
    mirror) and the caller falls to the interpreted body.  Raises the
    vectorizer's ``_Ineligible`` when the statement uses constructs the
    replay grammar does not cover (``while``, ``printf``, user calls,
    pointer arithmetic).
    """
    return _ReplayCompiler(interp, stmt).compile()
