"""Sequential scalar replay over generated Python source.

The replay tier is the vectorizer's launch-time safety net: when every
NumPy strategy declines a launch (data-dependent shapes, overflow
escalation, aliased slots), the kernel still has to run — in exact C
evaluation order, charging the exact tick ledger — without falling
back to the tree-walking interpreter and its per-launch costs.

Since PR 6 the tier executes *generated source*: the closure-per-node
walkers are gone, replaced by :mod:`repro.runtime.codegen`, which
flattens the kernel body into one Python function per nest.  This
module keeps only the launch harness — preflight the slots, lower
arrays to Python lists with a C element codec, run the compiled
kernel, flush its tick count, write arrays back — plus the codec
itself.  The generated function is compiled once per distinct kernel
(content-hash memo, shared through the pipeline artifact store) and
reused across launches, batch workers, and served jobs.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


def _ineligible(reason: str) -> Exception:
    from .vectorize import _Ineligible

    return _Ineligible(reason)


def _elem_codec(dtype: np.dtype) -> Callable[[Any], Any] | None:
    """Store-side element conversion for one array dtype.

    Mirrors the interpreter's per-element semantics: float stores
    narrow through the array dtype, integer stores range-check like
    CPython's C-long conversion.  Returns None for dtypes the replay
    tier does not model (the launch then declines).
    """
    kind = dtype.kind
    if kind == "f":
        if dtype == np.float64:
            return float
        if dtype == np.float32:
            return lambda v: float(np.float32(v))
        return None
    if kind in "iu":
        info = np.iinfo(dtype)
        lo, hi = int(info.min), int(info.max)

        def to_int(v: Any) -> int:
            i = int(v)
            if i < lo or i > hi:
                raise OverflowError(
                    "Python int too large to convert to C long"
                )
            return i

        return to_int
    return None


def _make_replay_runner(
    specs: list[dict[str, Any]], kernel: Callable[[list, int, int], int]
) -> Callable[[Any], bool]:
    """Launch harness around one generated sequential kernel.

    ``kernel(slots, budget, max_steps)`` returns the tick count it
    consumed; the harness charges it to the machine ledger and writes
    mutated arrays back, exactly as the closure walkers did.
    """

    def run(machine: Any) -> bool:
        from .vectorize import _preflight

        slots = _preflight(machine, specs)
        if slots is None:
            return False
        rslots: list[Any] = []
        written: list[tuple[Any, list]] = []
        for spec, slot in zip(specs, slots):
            if spec["kind"] == "array":
                storage, offset, shape = slot
                codec = _elem_codec(storage.dtype)
                if codec is None:
                    return False
                data = storage.tolist()
                rslots.append((data, offset, shape, codec))
                if spec["written"]:
                    written.append((storage, data))
            else:
                rslots.append(slot)
        count = kernel(
            rslots, machine.max_steps - machine.steps, machine.max_steps
        )
        machine.steps += count
        if machine.on_device:
            machine.profiler.tick_device(count)
        else:
            machine.profiler.tick_host(count)
        for storage, data in written:
            storage[:] = data
        return True

    return run


def compile_replay(interp: Any, stmt: Any) -> Callable[[Any], bool]:
    """Compile one kernel directive into a sequential replay runner.

    Prefers a precompiled codegen row (pipeline artifact, keyed by
    directive node id) when the interpreter carries one; host-loop
    shims and cold interpreters emit locally.  Raises the vectorizer's
    ``_Ineligible`` with the historical message when the nest uses a
    construct outside the sequential grammar.
    """
    from .codegen import (
        CODEGEN_SCHEMA,
        bind_specs,
        compiled_kernel,
        emit_scalar_row,
    )

    row = None
    rows = getattr(interp, "_codegen_rows", None)
    if rows:
        cached = rows.get(stmt.node_id)
        if (
            cached is not None
            and cached.get("schema") == CODEGEN_SCHEMA
            and all(
                name in interp._math for name in cached.get("math", ())
            )
        ):
            row = cached
    if row is None:
        row = emit_scalar_row(stmt, frozenset(interp._math))
    if row["reason"] is not None:
        raise _ineligible(row["reason"])
    kernel = compiled_kernel(row, interp._math)
    return _make_replay_runner(bind_specs(row), kernel)
