"""Closure-compiling interpreter for mini-C with OpenMP offloading.

Each AST node is compiled once into a Python closure; execution then
runs closures only (no per-step dispatch on node types) — the standard
technique for fast tree interpreters in Python.

Offload semantics implemented here (and observed by the profiler):

* **kernel launch** (any Table I directive): every referenced variable
  is resolved; explicit ``map``/``firstprivate``/``private``/
  ``reduction`` clauses are honored; everything else is implicitly
  mapped ``tofrom`` against the refcounted present table.  With no
  explicit clauses this reproduces the default-mapping redundancy the
  paper's "Unoptimized" variants measure (Listing 1/2 behaviour).
* **kernels execute against device copies** — a missing or misplaced
  transfer yields stale data and observably wrong output, which is how
  mapping correctness is verified (paper section VI).
* ``target data`` regions and ``target update`` directives follow the
  OpenMP 5.2 reference-count rules of :mod:`repro.runtime.device`,
  including the Listing 3 pitfall.
* ``firstprivate``/``reduction``/implicit-scalar arguments travel as
  kernel arguments: **no memcpy recorded** — the optimization OMPDart
  exploits (paper section IV-D, verified on clang/gcc/icx).

Implicit-mapping note: scalars referenced without any clause are mapped
``tofrom`` like aggregates (OpenMP 4.0 semantics, which the evaluated
benchmarks' "Unoptimized" variants rely on for correctness); explicit
``firstprivate`` suppresses the copies.  DESIGN.md documents this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable

import numpy as np

from ..frontend import ast_nodes as A
from ..frontend.ctypes_ import ArrayType, QualType, StructType
from ..frontend.parser import EnumConstantDecl, fold_integer_constant, parse_source
from .builtins import LCG, c_printf, make_math_builtins, mem_copy, mem_set
from .costmodel import CostModel
from .device import DeviceDataEnvironment
from .platform import Platform, resolve_platform
from .profiler import Profiler, TransferStats
from .values import NULL, ArrayObject, Cell, Pointer, StructObject


class SimulationError(RuntimeError):
    """Raised on runtime errors in the simulated program."""


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class CellPointer:
    """Pointer to a scalar cell (``&x``); supports ``p[0]`` and ``*p``."""

    __slots__ = ("cell",)

    def __init__(self, cell: Cell):
        self.cell = cell


@dataclass
class SimulationResult:
    """Outcome of one simulated program run."""

    output: str
    return_code: int
    stats: TransferStats
    profiler: Profiler
    #: Host wall-clock seconds the simulation itself took (filled in by
    #: the suite runner; 0.0 when nobody timed the run).  Unlike every
    #: field above this is *not* deterministic.
    wall_time_s: float = 0.0
    #: Kernel launches executed through the vectorizing executor
    #: (:mod:`repro.runtime.vectorize`); the remaining
    #: ``stats.kernel_launches - vectorized_launches`` ran interpreted.
    vectorized_launches: int = 0
    #: Launch counts per lowering strategy ("straight", "collapse",
    #: "masked", "ufunc", "wavefront") plus "interpreter" for launches
    #: no strategy accepted.
    strategy_launches: dict[str, int] = dataclass_field(default_factory=dict)
    #: Why any launch ran interpreted (first static ineligibility note
    #: or runtime-decline note); None when every launch vectorized.
    fallback_reason: str | None = None

    @property
    def total_time_s(self) -> float:
        return self.stats.total_time_s

    @property
    def vector_strategy(self) -> str | None:
        """The weakest-ranked strategy any launch used (coverage label).

        ``interpreter`` when at least one launch fell back, None when
        the run launched no kernels at all.
        """
        if not self.strategy_launches:
            return None
        from .vectorize import STRATEGY_RANK

        return min(
            self.strategy_launches,
            key=lambda s: STRATEGY_RANK.get(s, -1),
        )


class Machine:
    """Mutable runtime state shared by all compiled closures."""

    def __init__(self, profiler: Profiler, max_steps: int):
        self.profiler = profiler
        self.device = DeviceDataEnvironment(profiler)
        self.globals: dict[str, Any] = {}
        self.frame: dict[int, Any] = {}
        self.on_device = False
        self.kernel_overrides: dict[str, Any] = {}
        self.rng = LCG()
        self.stdout: list[str] = []
        self.steps = 0
        self.max_steps = max_steps
        self.vectorized_launches = 0
        #: Launch counts per lowering strategy (+ "interpreter").
        self.strategy_launches: dict[str, int] = {}

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise SimulationError(
                f"simulation exceeded {self.max_steps} steps (runaway loop?)"
            )
        if self.on_device:
            self.profiler.tick_device()
        else:
            self.profiler.tick_host()

    def storage_of(self, obj: ArrayObject) -> Any:
        """Array backing store in the current memory space."""
        if self.on_device and self.device.present(obj):
            return self.device.device_storage(obj)
        return obj.data


def _truthy(value: Any) -> bool:
    if isinstance(value, (Pointer, CellPointer, ArrayObject)):
        return True
    if value is NULL:
        return False
    return bool(value)


def _c_div(a: Any, b: Any) -> Any:
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise SimulationError("integer division by zero")
        q = abs(int(a)) // abs(int(b))
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _c_mod(a: Any, b: Any) -> Any:
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        if b == 0:
            raise SimulationError("integer modulo by zero")
        return int(a) - _c_div(a, b) * int(b)
    import math

    return math.fmod(a, b)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _c_div,
    "%": _c_mod,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(_eq(a, b)),
    "!=": lambda a, b: int(not _eq(a, b)),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
}


def _eq(a: Any, b: Any) -> bool:
    if a is NULL or b is NULL:
        null_a = a is NULL or (isinstance(a, (int, np.integer)) and a == 0)
        null_b = b is NULL or (isinstance(b, (int, np.integer)) and b == 0)
        return null_a and null_b
    return a == b


def _coerce_for(qt: QualType | None) -> Callable[[Any], Any]:
    if qt is not None and qt.is_integer:
        return lambda v: int(v)
    if qt is not None and qt.is_floating:
        return lambda v: float(v)
    return lambda v: v


class _MallocResult:
    """Marker value returned by malloc/calloc until bound to a pointer."""

    __slots__ = ("nbytes", "zeroed", "elem_qt")

    def __init__(self, nbytes: int, zeroed: bool, elem_qt: QualType | None = None):
        self.nbytes = int(nbytes)
        self.zeroed = zeroed
        self.elem_qt = elem_qt


class Interpreter:
    """Compiles and runs one translation unit."""

    def __init__(
        self,
        tu: A.TranslationUnit,
        *,
        cost_model: CostModel | None = None,
        platform: Platform | str | None = None,
        max_steps: int = 200_000_000,
        vectorize: bool = True,
        codegen_rows: dict[int, Any] | None = None,
    ):
        if cost_model is None:
            cost_model = resolve_platform(platform).effective_cost_model
        elif platform is not None:
            raise ValueError("pass either cost_model or platform, not both")
        self.tu = tu
        #: Precompiled kernel-source rows from the pipeline's ``codegen``
        #: pass, keyed by directive node id; when absent, the replay
        #: tier emits rows on first use.
        self._codegen_rows = codegen_rows
        self.profiler = Profiler(cost_model)
        self.machine = Machine(self.profiler, max_steps)
        self.vectorize = vectorize
        #: Fallback reasons per ineligible kernel, keyed by directive
        #: node id (populated only when ``vectorize`` is on).
        self.vector_notes: dict[int, str] = {}
        self._functions: dict[str, Callable[[list[Any]], Any]] = {}
        self._math = make_math_builtins()
        self._alloc_counter = 0
        #: True while compiling an offload kernel's body — suppresses
        #: the host-loop vectorization hook (the kernel-level
        #: candidates own those loops).
        self._compiling_kernel = False

    # ==================================================================
    # Program entry
    # ==================================================================

    def run(self, entry: str = "main") -> SimulationResult:
        self._init_globals()
        fn = self.tu.lookup_function(entry)
        if fn is None or not fn.is_definition:
            raise SimulationError(f"no definition of entry function {entry!r}")
        try:
            rc = self._call_function(fn, [])
        except _Return as ret:  # pragma: no cover - defensive
            rc = ret.value
        rc = int(rc) if isinstance(rc, (int, float, np.integer)) else 0
        stats = self.profiler.snapshot()
        fallback_reason = None
        if stats.kernel_launches > self.machine.vectorized_launches:
            if not self.vectorize:
                fallback_reason = "vectorization disabled (--no-vectorize)"
            else:
                fallback_reason = next(
                    iter(self.vector_notes.values()),
                    "kernel declined vectorization",
                )
        return SimulationResult(
            output="".join(self.machine.stdout),
            return_code=rc,
            stats=stats,
            profiler=self.profiler,
            vectorized_launches=self.machine.vectorized_launches,
            strategy_launches=dict(self.machine.strategy_launches),
            fallback_reason=fallback_reason,
        )

    def _init_globals(self) -> None:
        m = self.machine
        for decl in self.tu.global_vars():
            m.globals[decl.name] = self._create_binding(decl, None)

    # ==================================================================
    # Binding creation
    # ==================================================================

    def _create_binding(self, decl: A.VarDecl, init_value: Any) -> Any:
        qt = decl.qual_type
        if isinstance(qt.type, ArrayType):
            elem_qt, dims = qt.type.flattened()
            if any(d < 0 for d in dims):
                raise SimulationError(f"unsized array {decl.name!r}")
            length = 1
            for d in dims:
                length *= d
            obj = ArrayObject(decl.name, length, elem_qt, shape=tuple(dims))
            if decl.init is not None and init_value is None:
                self._fill_array_static(obj, decl.init)
            elif init_value is not None:
                self._fill_array_static(obj, None, init_value)
            return obj
        if isinstance(qt.type, StructType):
            return StructObject(qt.type)
        # scalar / pointer
        cell = Cell(decl.name, 0 if not qt.is_floating else 0.0, qt.size)
        if qt.is_pointer:
            cell.value = NULL
        if decl.init is not None and init_value is None:
            init_value = self._eval_constant_init(decl.init)
        if init_value is not None:
            cell.value = _coerce_for(qt)(init_value) if not isinstance(
                init_value, (Pointer, CellPointer, _MallocResult)
            ) else init_value
        return cell

    def _eval_constant_init(self, expr: A.Expr) -> Any:
        folded = fold_integer_constant(expr)
        if folded is not None:
            return folded
        if isinstance(expr, A.FloatingLiteral):
            return expr.value
        if isinstance(expr, A.StringLiteral):
            return expr.value
        if isinstance(expr, A.UnaryOperator) and isinstance(
            expr.operand, A.FloatingLiteral
        ):
            return -expr.operand.value if expr.op == "-" else expr.operand.value
        return 0

    def _fill_array_static(
        self, obj: ArrayObject, init: A.Expr | None, values: Any = None
    ) -> None:
        if values is not None:
            obj.data[: len(values)] = values
            return
        if not isinstance(init, A.InitListExpr):
            return
        flat: list[Any] = []

        def flatten(e: A.Expr) -> None:
            if isinstance(e, A.InitListExpr):
                for sub in e.inits:
                    flatten(sub)
            else:
                flat.append(self._eval_constant_init(e))

        flatten(init)
        if obj.is_struct:
            return  # struct-array initializers unsupported (unused)
        obj.data[: len(flat)] = flat

    # ==================================================================
    # Function compilation & calls
    # ==================================================================

    def _compiled(self, fn: A.FunctionDecl) -> Callable[[list[Any]], Any]:
        cached = self._functions.get(fn.name)
        if cached is not None:
            return cached
        body = self._compile_stmt(fn.body)
        params = fn.params
        machine = self.machine

        def invoke(args: list[Any]) -> Any:
            saved = machine.frame
            machine.frame = {}
            try:
                for param, arg in zip(params, args):
                    if isinstance(arg, ArrayObject):
                        arg = Pointer(arg, 0)
                    if isinstance(arg, StructObject):
                        machine.frame[param.node_id] = arg.copy()
                    else:
                        cell = Cell(param.name, 0, param.qual_type.size)
                        if isinstance(arg, (Pointer, CellPointer)) or arg is NULL:
                            cell.value = arg
                        else:
                            cell.value = _coerce_for(param.qual_type)(arg)
                        machine.frame[param.node_id] = cell
                try:
                    body(machine)
                except _Return as ret:
                    return ret.value
                return 0
            finally:
                machine.frame = saved

        self._functions[fn.name] = invoke
        return invoke

    def _call_function(self, fn: A.FunctionDecl, args: list[Any]) -> Any:
        return self._compiled(fn)(args)

    # ==================================================================
    # Statement compilation
    # ==================================================================

    def _compile_stmt(self, stmt: A.Stmt | None) -> Callable[[Machine], None]:
        if stmt is None or isinstance(stmt, A.NullStmt):
            return lambda m: None
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is not None:
            return method(stmt)
        if isinstance(stmt, A.OMPExecutableDirective):
            return self._compile_omp(stmt)
        raise SimulationError(f"cannot execute statement {stmt.class_name}")

    def _stmt_CompoundStmt(self, stmt: A.CompoundStmt) -> Callable[[Machine], None]:
        parts = [self._compile_stmt(s) for s in stmt.stmts]

        def run(m: Machine) -> None:
            for part in parts:
                part(m)

        return run

    def _stmt_ExprStmt(self, stmt: A.ExprStmt) -> Callable[[Machine], None]:
        expr = self._compile_expr(stmt.expr)

        def run(m: Machine) -> None:
            m.tick()
            expr(m)

        return run

    def _stmt_DeclStmt(self, stmt: A.DeclStmt) -> Callable[[Machine], None]:
        compiled: list[tuple[A.VarDecl, Callable[[Machine], Any] | None]] = []
        for decl in stmt.decls:
            init = self._compile_expr(decl.init) if decl.init is not None else None
            compiled.append((decl, init))
        create = self._create_binding

        def run(m: Machine) -> None:
            m.tick()
            for decl, init in compiled:
                value = init(m) if init is not None else None
                binding = create(decl, None)
                if value is not None:
                    if isinstance(binding, Cell):
                        binding.value = self._bind_cell_value(decl, value)
                    elif isinstance(binding, ArrayObject) and isinstance(value, list):
                        binding.data[: len(value)] = value
                m.frame[decl.node_id] = binding

        return run

    def _bind_cell_value(self, decl: A.VarDecl, value: Any) -> Any:
        if isinstance(value, _MallocResult):
            return self._materialize_malloc(decl.qual_type, value, decl.name)
        if isinstance(value, (Pointer, CellPointer)) or value is NULL:
            return value
        if isinstance(value, ArrayObject):
            return Pointer(value, 0)
        return _coerce_for(decl.qual_type)(value)

    def _materialize_malloc(
        self, ptr_qt: QualType, req: _MallocResult, name: str
    ) -> Pointer:
        elem_qt = req.elem_qt
        if elem_qt is None and ptr_qt.is_pointer:
            elem_qt = ptr_qt.pointee()
        if elem_qt is None or elem_qt.size == 0:
            from ..frontend.ctypes_ import UCHAR

            elem_qt = UCHAR
        self._alloc_counter += 1
        length = max(req.nbytes // elem_qt.size, 0)
        return Pointer(ArrayObject(f"{name}#{self._alloc_counter}", length, elem_qt), 0)

    def _stmt_ReturnStmt(self, stmt: A.ReturnStmt) -> Callable[[Machine], None]:
        value = self._compile_expr(stmt.value) if stmt.value is not None else None

        def run(m: Machine) -> None:
            m.tick()
            raise _Return(value(m) if value is not None else 0)

        return run

    def _stmt_BreakStmt(self, stmt: A.BreakStmt) -> Callable[[Machine], None]:
        def run(m: Machine) -> None:
            raise _Break()

        return run

    def _stmt_ContinueStmt(self, stmt: A.ContinueStmt) -> Callable[[Machine], None]:
        def run(m: Machine) -> None:
            raise _Continue()

        return run

    def _stmt_IfStmt(self, stmt: A.IfStmt) -> Callable[[Machine], None]:
        cond = self._compile_expr(stmt.cond)
        then_branch = self._compile_stmt(stmt.then_branch)
        else_branch = (
            self._compile_stmt(stmt.else_branch)
            if stmt.else_branch is not None
            else None
        )

        def run(m: Machine) -> None:
            m.tick()
            if _truthy(cond(m)):
                then_branch(m)
            elif else_branch is not None:
                else_branch(m)

        return run

    def _stmt_ForStmt(self, stmt: A.ForStmt) -> Callable[[Machine], None]:
        init = self._compile_stmt(stmt.init) if stmt.init is not None else None
        cond = self._compile_expr(stmt.cond) if stmt.cond is not None else None
        inc = self._compile_expr(stmt.inc) if stmt.inc is not None else None
        body = self._compile_stmt(stmt.body)
        candidates: list[Any] = []
        if self.vectorize and not self._compiling_kernel:
            from .vectorize import compile_host_loop_candidates

            candidates = compile_host_loop_candidates(self, stmt)

        def run(m: Machine) -> None:
            # Host-side loops route through the same vector executor as
            # kernels (bit-identical values and tick charges); inside an
            # interpreted kernel body (on_device) the loop stays
            # interpreted — kernel-level candidates own that case.
            if candidates and not m.on_device:
                if any(c.declines for c in candidates):
                    ordered = sorted(candidates, key=lambda c: c.declines)
                else:
                    ordered = candidates
                for cand in ordered:
                    if cand.runner(m):
                        return
                    cand.declines += 1
            if init is not None:
                init(m)
            while True:
                m.tick()
                if cond is not None and not _truthy(cond(m)):
                    return
                try:
                    body(m)
                except _Break:
                    return
                except _Continue:
                    pass
                if inc is not None:
                    inc(m)

        return run

    def _stmt_WhileStmt(self, stmt: A.WhileStmt) -> Callable[[Machine], None]:
        cond = self._compile_expr(stmt.cond)
        body = self._compile_stmt(stmt.body)

        def run(m: Machine) -> None:
            while True:
                m.tick()
                if not _truthy(cond(m)):
                    return
                try:
                    body(m)
                except _Break:
                    return
                except _Continue:
                    continue

        return run

    def _stmt_DoStmt(self, stmt: A.DoStmt) -> Callable[[Machine], None]:
        cond = self._compile_expr(stmt.cond)
        body = self._compile_stmt(stmt.body)

        def run(m: Machine) -> None:
            while True:
                m.tick()
                try:
                    body(m)
                except _Break:
                    return
                except _Continue:
                    pass
                if not _truthy(cond(m)):
                    return

        return run

    def _stmt_SwitchStmt(self, stmt: A.SwitchStmt) -> Callable[[Machine], None]:
        cond = self._compile_expr(stmt.cond)
        # Flatten the body into (case-value | "default" | None, closure).
        entries: list[tuple[Any, Callable[[Machine], None]]] = []
        body = stmt.body
        stmts = body.stmts if isinstance(body, A.CompoundStmt) else [body]
        for child in stmts:
            labels: list[Any] = []
            inner: A.Stmt | None = child
            while isinstance(inner, (A.CaseStmt, A.DefaultStmt)):
                if isinstance(inner, A.DefaultStmt):
                    labels.append("default")
                    inner = inner.sub_stmt
                else:
                    value = fold_integer_constant(inner.value)
                    if value is None:
                        raise SimulationError("non-constant case label")
                    labels.append(value)
                    inner = inner.sub_stmt
            closure = self._compile_stmt(inner) if inner is not None else (lambda m: None)
            entries.append((labels, closure))

        def run(m: Machine) -> None:
            m.tick()
            selector = cond(m)
            start = None
            default_start = None
            for i, (labels, _) in enumerate(entries):
                if any(lbl != "default" and lbl == selector for lbl in labels):
                    start = i
                    break
                if "default" in labels and default_start is None:
                    default_start = i
            if start is None:
                start = default_start
            if start is None:
                return
            try:
                for _, closure in entries[start:]:
                    closure(m)
            except _Break:
                return

        return run

    # ==================================================================
    # OpenMP directive compilation
    # ==================================================================

    def _compile_omp(self, stmt: A.OMPExecutableDirective) -> Callable[[Machine], None]:
        if stmt.is_offload_kernel:
            return self._compile_kernel(stmt)
        if isinstance(stmt, A.OMPTargetDataDirective):
            return self._compile_target_data(stmt)
        if isinstance(stmt, A.OMPTargetEnterDataDirective):
            return self._compile_enter_exit_data(stmt, entering=True)
        if isinstance(stmt, A.OMPTargetExitDataDirective):
            return self._compile_enter_exit_data(stmt, entering=False)
        if isinstance(stmt, A.OMPTargetUpdateDirective):
            return self._compile_target_update(stmt)
        # Host directives (parallel for, ...) execute their body directly.
        return self._compile_stmt(stmt.associated_stmt)

    # -- clause helpers -----------------------------------------------------

    def _clause_names(self, stmt: A.OMPExecutableDirective, cls: type) -> set[str]:
        names: set[str] = set()
        for clause in stmt.clauses_of(cls):
            names.update(clause.var_names())  # type: ignore[attr-defined]
        return names

    def _map_items(
        self, stmt: A.OMPExecutableDirective
    ) -> list[tuple[str, str, bool]]:
        items: list[tuple[str, str, bool]] = []
        for clause in stmt.map_clauses():
            for item in clause.items:
                items.append((item.name, clause.map_type, clause.always))
        return items

    def _referenced_decls(
        self, stmt: A.OMPExecutableDirective
    ) -> list[tuple[str, A.Decl | None]]:
        """Variables the kernel references, minus kernel-local decls."""
        body = stmt.associated_stmt
        if body is None:
            return []
        local_ids: set[int] = set()
        for decl in body.walk_instances(A.VarDecl):
            local_ids.add(decl.node_id)
        seen: dict[str, A.Decl | None] = {}
        for ref in body.walk_instances(A.DeclRefExpr):
            decl = ref.decl
            if isinstance(decl, (A.FunctionDecl, EnumConstantDecl)):
                continue
            if decl is not None and decl.node_id in local_ids:
                continue
            if decl is None and ref.name not in seen:
                seen[ref.name] = None
                continue
            seen.setdefault(ref.name, decl)
        return list(seen.items())

    def _resolve_name(self, m: Machine, name: str, decl: A.Decl | None) -> Any:
        if decl is not None and decl.node_id in m.frame:
            return m.frame[decl.node_id]
        if name in m.globals:
            return m.globals[name]
        # Fall back: search the frame by cell/array name (callee params).
        for binding in m.frame.values():
            if getattr(binding, "name", None) == name:
                return binding
        raise SimulationError(f"unbound variable {name!r} in OpenMP clause")

    def _mappable_of(self, binding: Any) -> Any:
        if isinstance(binding, Cell) and isinstance(binding.value, Pointer):
            return binding.value.obj
        if isinstance(binding, Cell) and isinstance(binding.value, CellPointer):
            return binding.value.cell
        return binding

    # -- kernels ------------------------------------------------------------

    def _compile_kernel(self, stmt: A.OMPExecutableDirective) -> Callable[[Machine], None]:
        self._compiling_kernel = True
        try:
            body = self._compile_stmt(stmt.associated_stmt)
        finally:
            self._compiling_kernel = False
        candidates: list[Any] = []
        if self.vectorize:
            from .vectorize import compile_kernel_candidates

            candidates, note = compile_kernel_candidates(self, stmt)
            if note is not None:
                self.vector_notes[stmt.node_id] = note
        vector_notes = self.vector_notes
        node_id = stmt.node_id
        refs = self._referenced_decls(stmt)
        explicit_map = {name: (mt, alw) for name, mt, alw in self._map_items(stmt)}
        firstprivate = self._clause_names(stmt, A.OMPFirstprivateClause)
        private = self._clause_names(stmt, A.OMPPrivateClause)
        reductions: list[tuple[str, str]] = []
        for clause in stmt.clauses_of(A.OMPReductionClause):
            for name in clause.var_names():
                reductions.append((name, clause.operator))  # type: ignore[attr-defined]
        reduction_names = {name for name, _ in reductions}
        from .launch import KernelLaunchPlan

        plan = KernelLaunchPlan(
            refs=refs,
            explicit_map=explicit_map,
            private=private,
            firstprivate=firstprivate,
            reduction_names=reduction_names,
            resolve=self._resolve_name,
            mappable=self._mappable_of,
        )

        def run(m: Machine) -> None:
            m.profiler.record_kernel_launch()
            token = plan.enter(m)

            prev_device = m.on_device
            prev_overrides = m.kernel_overrides
            m.on_device = True
            m.kernel_overrides = token.overrides
            try:
                # Every vectorized strategy is bit-identical to the
                # interpreted body (values, transfers, step accounting);
                # a runner returns False to decline a launch — e.g. a
                # pointer bound to a struct array, or a failed scatter
                # commit check — and the next candidate (ultimately the
                # closure body) runs.  Candidates that declined before
                # sort last, so a shape that always fails its launch
                # checks pays the failed attempt once.
                executed: str | None = None
                if any(c.declines for c in candidates):
                    ordered = sorted(candidates, key=lambda c: c.declines)
                else:
                    ordered = candidates
                for cand in ordered:
                    if cand.runner(m):
                        executed = cand.strategy
                        break
                    cand.declines += 1
                if executed is not None:
                    m.vectorized_launches += 1
                    m.strategy_launches[executed] = (
                        m.strategy_launches.get(executed, 0) + 1
                    )
                else:
                    if candidates:
                        vector_notes.setdefault(
                            node_id,
                            "launch-time checks declined every strategy "
                            "(data-dependent shape)",
                        )
                    m.strategy_launches["interpreter"] = (
                        m.strategy_launches.get("interpreter", 0) + 1
                    )
                    body(m)
            finally:
                m.on_device = prev_device
                m.kernel_overrides = prev_overrides
            plan.exit(m, token)

        return run

    # -- data regions / updates ------------------------------------------------

    def _compile_target_data(self, stmt: A.OMPTargetDataDirective) -> Callable[[Machine], None]:
        body = self._compile_stmt(stmt.associated_stmt)
        items = self._map_items(stmt)
        resolve = self._resolve_name
        mappable = self._mappable_of

        def run(m: Machine) -> None:
            mapped: list[tuple[Any, str, bool]] = []
            for name, map_type, always in items:
                obj = mappable(resolve(m, name, None))
                m.device.map_enter(obj, map_type, always=always)
                mapped.append((obj, map_type, always))
            try:
                body(m)
            finally:
                for obj, map_type, always in reversed(mapped):
                    m.device.map_exit(obj, map_type, always=always)

        return run

    def _compile_enter_exit_data(
        self, stmt: A.OMPExecutableDirective, *, entering: bool
    ) -> Callable[[Machine], None]:
        items = self._map_items(stmt)
        resolve = self._resolve_name
        mappable = self._mappable_of

        def run(m: Machine) -> None:
            for name, map_type, always in items:
                obj = mappable(resolve(m, name, None))
                if entering:
                    m.device.map_enter(obj, map_type, always=always)
                else:
                    m.device.map_exit(obj, map_type, always=always)

        return run

    def _compile_target_update(
        self, stmt: A.OMPTargetUpdateDirective
    ) -> Callable[[Machine], None]:
        to_names = [
            item.name
            for clause in stmt.clauses_of(A.OMPToClause)
            for item in clause.items  # type: ignore[attr-defined]
        ]
        from_names = [
            item.name
            for clause in stmt.clauses_of(A.OMPFromClause)
            for item in clause.items  # type: ignore[attr-defined]
        ]
        resolve = self._resolve_name
        mappable = self._mappable_of

        def run(m: Machine) -> None:
            for name in to_names:
                m.device.update_to(mappable(resolve(m, name, None)))
            for name in from_names:
                m.device.update_from(mappable(resolve(m, name, None)))

        return run

    # ==================================================================
    # Expression compilation
    # ==================================================================

    def _compile_expr(self, expr: A.Expr) -> Callable[[Machine], Any]:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise SimulationError(f"cannot evaluate {expr.class_name}")
        return method(expr)

    # -- literals -----------------------------------------------------------

    def _expr_IntegerLiteral(self, expr: A.IntegerLiteral):
        value = expr.value
        return lambda m: value

    def _expr_FloatingLiteral(self, expr: A.FloatingLiteral):
        value = expr.value
        return lambda m: value

    def _expr_CharacterLiteral(self, expr: A.CharacterLiteral):
        value = expr.value
        return lambda m: value

    def _expr_StringLiteral(self, expr: A.StringLiteral):
        value = expr.value
        return lambda m: value

    def _expr_ParenExpr(self, expr: A.ParenExpr):
        return self._compile_expr(expr.inner)

    def _expr_SizeOfExpr(self, expr: A.SizeOfExpr):
        size = fold_integer_constant(expr) or 0
        return lambda m: size

    # -- name references --------------------------------------------------------

    def _binding_getter(self, ref: A.DeclRefExpr) -> Callable[[Machine], Any]:
        decl = ref.decl
        name = ref.name
        if isinstance(decl, EnumConstantDecl):
            value = decl.value
            return lambda m: value
        if isinstance(decl, A.ParmVarDecl) or (
            isinstance(decl, A.VarDecl) and not decl.is_global
        ):
            key = decl.node_id

            def get_local(m: Machine) -> Any:
                if m.on_device:
                    ov = m.kernel_overrides.get(name)
                    if ov is not None:
                        return ov
                binding = m.frame.get(key)
                if binding is None:
                    raise SimulationError(f"use of uninitialized variable {name!r}")
                return binding

            return get_local

        def get_global(m: Machine) -> Any:
            if m.on_device:
                ov = m.kernel_overrides.get(name)
                if ov is not None:
                    return ov
            binding = m.globals.get(name)
            if binding is None:
                binding = m.frame.get(decl.node_id) if decl is not None else None
            if binding is None:
                raise SimulationError(f"unbound variable {name!r}")
            return binding

        return get_global

    def _expr_DeclRefExpr(self, expr: A.DeclRefExpr):
        if isinstance(expr.decl, A.FunctionDecl):
            name = expr.name
            return lambda m: name  # callee handled by CallExpr
        getter = self._binding_getter(expr)

        def load(m: Machine) -> Any:
            binding = getter(m)
            if isinstance(binding, Cell):
                return binding.value
            return binding  # ArrayObject / StructObject decay to themselves

        return load

    # -- lvalues ------------------------------------------------------------------

    def _compile_lvalue(
        self, expr: A.Expr
    ) -> tuple[Callable[[Machine], Any], Callable[[Machine, Any], None]]:
        expr = self._strip_paren(expr)
        if isinstance(expr, A.DeclRefExpr):
            getter = self._binding_getter(expr)
            coerce = _coerce_for(expr.qual_type)
            qt = expr.qual_type

            def load(m: Machine) -> Any:
                binding = getter(m)
                return binding.value if isinstance(binding, Cell) else binding

            def store(m: Machine, value: Any) -> None:
                binding = getter(m)
                if isinstance(binding, Cell):
                    if isinstance(value, _MallocResult):
                        binding.value = self._materialize_malloc(
                            qt if qt is not None else QualType(StructType()),
                            value, binding.name,
                        )
                    elif isinstance(value, (Pointer, CellPointer)) or value is NULL:
                        binding.value = value
                    elif isinstance(value, ArrayObject):
                        binding.value = Pointer(value, 0)
                    else:
                        binding.value = coerce(value)
                elif isinstance(binding, StructObject) and isinstance(value, StructObject):
                    binding.fields = dict(value.fields)
                else:
                    raise SimulationError(f"cannot assign to {expr.name!r}")

            return load, store

        if isinstance(expr, A.ArraySubscriptExpr):
            return self._subscript_lvalue(expr)
        if isinstance(expr, A.MemberExpr):
            return self._member_lvalue(expr)
        if isinstance(expr, A.UnaryOperator) and expr.op == "*":
            operand = self._compile_expr(expr.operand)

            def load_deref(m: Machine) -> Any:
                return self._pointer_load(m, operand(m), 0)

            def store_deref(m: Machine, value: Any) -> None:
                self._pointer_store(m, operand(m), 0, value)

            return load_deref, store_deref
        raise SimulationError(f"not an lvalue: {expr.class_name}")

    @staticmethod
    def _strip_paren(expr: A.Expr) -> A.Expr:
        while isinstance(expr, A.ParenExpr):
            expr = expr.inner
        return expr

    def _subscript_lvalue(self, expr: A.ArraySubscriptExpr):
        # Collect the full subscript chain: base expr + index closures.
        indices: list[Callable[[Machine], Any]] = []
        node: A.Expr = expr
        while isinstance(node, A.ArraySubscriptExpr):
            indices.append(self._compile_expr(node.index))
            node = self._strip_paren(node.base)
        indices.reverse()
        base = self._compile_expr(node)

        def resolve(m: Machine) -> tuple[Any, int]:
            target = base(m)
            idx_vals = [int(ix(m)) for ix in indices]
            if isinstance(target, CellPointer):
                if idx_vals != [0]:
                    raise SimulationError("scalar pointer indexed beyond 0")
                return target, 0
            if isinstance(target, Pointer):
                obj = target.obj
                flat = target.offset + obj.flat_index(tuple(idx_vals)) \
                    if len(idx_vals) > 1 else target.offset + idx_vals[0]
                return obj, flat
            if isinstance(target, ArrayObject):
                return target, target.flat_index(tuple(idx_vals))
            raise SimulationError(f"subscript of non-array value {target!r}")

        def load(m: Machine) -> Any:
            obj, flat = resolve(m)
            if isinstance(obj, CellPointer):
                return obj.cell.value
            storage = m.storage_of(obj)
            value = storage[flat]
            return value.item() if isinstance(value, np.generic) else value

        def store(m: Machine, value: Any) -> None:
            obj, flat = resolve(m)
            if isinstance(obj, CellPointer):
                obj.cell.value = value
                return
            storage = m.storage_of(obj)
            if obj.is_struct:
                storage[flat] = value.copy() if isinstance(value, StructObject) else value
            else:
                storage[flat] = value

        return load, store

    def _member_lvalue(self, expr: A.MemberExpr):
        base_expr = self._strip_paren(expr.base)
        member = expr.member
        if isinstance(base_expr, A.ArraySubscriptExpr):
            elem_load, elem_store = self._subscript_lvalue(base_expr)

            def load_elem_member(m: Machine) -> Any:
                struct = elem_load(m)
                return struct.fields[member]

            def store_elem_member(m: Machine, value: Any) -> None:
                struct = elem_load(m)
                struct.fields[member] = value

            return load_elem_member, store_elem_member

        base = self._compile_expr(base_expr)
        is_arrow = expr.is_arrow

        def get_struct(m: Machine) -> StructObject:
            target = base(m)
            if is_arrow and isinstance(target, Pointer):
                storage = m.storage_of(target.obj)
                target = storage[target.offset]
            if isinstance(target, StructObject):
                return target
            raise SimulationError(f"member access on non-struct {target!r}")

        def load(m: Machine) -> Any:
            return get_struct(m).fields[member]

        def store(m: Machine, value: Any) -> None:
            get_struct(m).fields[member] = value

        return load, store

    def _pointer_load(self, m: Machine, target: Any, offset: int) -> Any:
        if isinstance(target, CellPointer):
            return target.cell.value
        if isinstance(target, Pointer):
            storage = m.storage_of(target.obj)
            value = storage[target.offset + offset]
            return value.item() if isinstance(value, np.generic) else value
        if isinstance(target, ArrayObject):
            storage = m.storage_of(target)
            value = storage[offset]
            return value.item() if isinstance(value, np.generic) else value
        raise SimulationError(f"dereference of non-pointer {target!r}")

    def _pointer_store(self, m: Machine, target: Any, offset: int, value: Any) -> None:
        if isinstance(target, CellPointer):
            target.cell.value = value
            return
        if isinstance(target, Pointer):
            m.storage_of(target.obj)[target.offset + offset] = value
            return
        if isinstance(target, ArrayObject):
            m.storage_of(target)[offset] = value
            return
        raise SimulationError(f"dereference of non-pointer {target!r}")

    def _expr_ArraySubscriptExpr(self, expr: A.ArraySubscriptExpr):
        load, _ = self._subscript_lvalue(expr)
        return load

    def _expr_MemberExpr(self, expr: A.MemberExpr):
        load, _ = self._member_lvalue(expr)
        return load

    # -- operators -----------------------------------------------------------------

    def _expr_BinaryOperator(self, expr: A.BinaryOperator):
        op = expr.op
        if op == ",":
            lhs = self._compile_expr(expr.lhs)
            rhs = self._compile_expr(expr.rhs)

            def run_comma(m: Machine) -> Any:
                lhs(m)
                return rhs(m)

            return run_comma
        if op == "&&":
            lhs = self._compile_expr(expr.lhs)
            rhs = self._compile_expr(expr.rhs)
            return lambda m: int(_truthy(lhs(m)) and _truthy(rhs(m)))
        if op == "||":
            lhs = self._compile_expr(expr.lhs)
            rhs = self._compile_expr(expr.rhs)
            return lambda m: int(_truthy(lhs(m)) or _truthy(rhs(m)))
        if expr.is_assignment:
            return self._compile_assignment(expr)

        lhs = self._compile_expr(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        fn = _BINOPS.get(op)
        if fn is None:
            raise SimulationError(f"unsupported binary operator {op!r}")

        def run(m: Machine) -> Any:
            a, b = lhs(m), rhs(m)
            # pointer arithmetic
            if isinstance(a, Pointer) and op in ("+", "-") and not isinstance(b, Pointer):
                return a + int(b) if op == "+" else a - int(b)
            if isinstance(b, Pointer) and op == "+":
                return b + int(a)
            if isinstance(a, ArrayObject):
                a = Pointer(a, 0)
                if op in ("+", "-") and not isinstance(b, (Pointer, ArrayObject)):
                    return a + int(b) if op == "+" else a - int(b)
            return fn(a, b)

        return run

    _COMPOUND = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    }

    def _compile_assignment(self, expr: A.BinaryOperator):
        load, store = self._compile_lvalue(expr.lhs)
        rhs = self._compile_expr(expr.rhs)
        if expr.op == "=":
            def run(m: Machine) -> Any:
                value = rhs(m)
                store(m, value)
                return value

            return run
        base_op = self._COMPOUND[expr.op]
        fn = _BINOPS[base_op]

        def run_compound(m: Machine) -> Any:
            old = load(m)
            value = rhs(m)
            if isinstance(old, Pointer):
                new = old + int(value) if base_op == "+" else old - int(value)
            else:
                new = fn(old, value)
            store(m, new)
            return new

        return run_compound

    def _expr_CompoundAssignOperator(self, expr: A.CompoundAssignOperator):
        return self._compile_assignment(expr)

    def _expr_UnaryOperator(self, expr: A.UnaryOperator):
        op = expr.op
        if op in ("++", "--"):
            load, store = self._compile_lvalue(expr.operand)
            delta = 1 if op == "++" else -1
            prefix = expr.is_prefix

            def run_incdec(m: Machine) -> Any:
                old = load(m)
                new = old + delta
                store(m, new)
                return new if prefix else old

            return run_incdec
        if op == "&":
            operand = self._strip_paren(expr.operand)
            if isinstance(operand, A.ArraySubscriptExpr):
                _, _ = self._subscript_lvalue(operand)  # validate shape
                indices = []
                node: A.Expr = operand
                while isinstance(node, A.ArraySubscriptExpr):
                    indices.append(self._compile_expr(node.index))
                    node = self._strip_paren(node.base)
                indices.reverse()
                base = self._compile_expr(node)

                def addr_of_elem(m: Machine) -> Any:
                    target = base(m)
                    idx_vals = tuple(int(ix(m)) for ix in indices)
                    if isinstance(target, Pointer):
                        return Pointer(target.obj, target.offset + idx_vals[0])
                    if isinstance(target, ArrayObject):
                        return Pointer(target, target.flat_index(idx_vals))
                    raise SimulationError("cannot take address of element")

                return addr_of_elem
            if isinstance(operand, A.DeclRefExpr):
                getter = self._binding_getter(operand)

                def addr_of_var(m: Machine) -> Any:
                    binding = getter(m)
                    if isinstance(binding, ArrayObject):
                        return Pointer(binding, 0)
                    if isinstance(binding, Cell):
                        return CellPointer(binding)
                    raise SimulationError("cannot take address of binding")

                return addr_of_var
            raise SimulationError("unsupported address-of operand")
        if op == "*":
            operand = self._compile_expr(expr.operand)
            return lambda m: self._pointer_load(m, operand(m), 0)

        operand = self._compile_expr(expr.operand)
        if op == "-":
            return lambda m: -operand(m)
        if op == "+":
            return operand
        if op == "!":
            return lambda m: int(not _truthy(operand(m)))
        if op == "~":
            return lambda m: ~int(operand(m))
        raise SimulationError(f"unsupported unary operator {op!r}")

    def _expr_ConditionalOperator(self, expr: A.ConditionalOperator):
        cond = self._compile_expr(expr.cond)
        true_expr = self._compile_expr(expr.true_expr)
        false_expr = self._compile_expr(expr.false_expr)
        return lambda m: true_expr(m) if _truthy(cond(m)) else false_expr(m)

    def _expr_CStyleCastExpr(self, expr: A.CStyleCastExpr):
        operand = self._compile_expr(expr.operand)
        target = expr.target_type
        if target.is_pointer:
            pointee = target.pointee()

            def run_ptr_cast(m: Machine) -> Any:
                value = operand(m)
                if isinstance(value, _MallocResult):
                    value.elem_qt = pointee
                    return value
                return value

            return run_ptr_cast
        coerce = _coerce_for(target)
        return lambda m: coerce(operand(m))

    def _expr_InitListExpr(self, expr: A.InitListExpr):
        parts = [self._compile_expr(e) for e in expr.inits]
        return lambda m: [p(m) for p in parts]

    # -- calls ------------------------------------------------------------------

    def _expr_CallExpr(self, expr: A.CallExpr):
        name = expr.callee_name
        if name is None:
            raise SimulationError("indirect calls are not supported")
        arg_closures = [self._compile_expr(a) for a in expr.args]

        target_fn = self.tu.lookup_function(name)
        if target_fn is not None and target_fn.is_definition:
            interp = self

            def run_user(m: Machine) -> Any:
                args = [c(m) for c in arg_closures]
                return interp._call_function(target_fn, args)

            return run_user

        return self._compile_builtin_call(name, arg_closures, expr)

    def _compile_builtin_call(
        self,
        name: str,
        arg_closures: list[Callable[[Machine], Any]],
        expr: A.CallExpr,
    ) -> Callable[[Machine], Any]:
        math_fn = self._math.get(name)
        if math_fn is not None:
            return lambda m: math_fn(*(c(m) for c in arg_closures))

        if name in ("printf", "fprintf"):
            skip = 1 if name == "fprintf" else 0

            def run_printf(m: Machine) -> Any:
                args = [c(m) for c in arg_closures]
                fmt = args[skip]
                if not isinstance(fmt, str):
                    return 0
                text = c_printf(fmt, args[skip + 1:])
                m.stdout.append(text)
                return len(text)

            return run_printf
        if name == "puts":
            def run_puts(m: Machine) -> Any:
                m.stdout.append(str(arg_closures[0](m)) + "\n")
                return 0

            return run_puts
        if name in ("malloc", "calloc"):
            zeroed = name == "calloc"

            def run_alloc(m: Machine) -> Any:
                args = [int(c(m)) for c in arg_closures]
                nbytes = args[0] * args[1] if zeroed else args[0]
                return _MallocResult(nbytes, zeroed)

            return run_alloc
        if name in ("free", "srand", "exit", "assert"):
            def run_misc(m: Machine) -> Any:
                args = [c(m) for c in arg_closures]
                if name == "srand":
                    m.rng.srand(int(args[0]))
                elif name == "exit":
                    raise _Return(int(args[0]))
                elif name == "assert" and not _truthy(args[0]):
                    raise SimulationError("assertion failed in simulated program")
                return 0

            return run_misc
        if name == "rand":
            return lambda m: m.rng.rand()
        if name == "memset":
            return lambda m: mem_set(*(c(m) for c in arg_closures))
        if name == "memcpy":
            return lambda m: mem_copy(*(c(m) for c in arg_closures))
        if name == "omp_get_wtime":
            return lambda m: m.profiler.current_time_s
        if name in ("omp_get_thread_num", "omp_get_team_num"):
            return lambda m: 0
        if name in ("omp_get_num_threads", "omp_get_num_teams"):
            return lambda m: 1
        if name == "omp_is_initial_device":
            return lambda m: 0 if m.on_device else 1
        raise SimulationError(f"call to unknown function {name!r}")


def run_simulation(
    source: str,
    filename: str = "<input>",
    *,
    predefined_macros: dict[str, object] | None = None,
    cost_model: CostModel | None = None,
    platform: Platform | str | None = None,
    max_steps: int = 200_000_000,
    entry: str = "main",
    tu: A.TranslationUnit | None = None,
    vectorize: bool = True,
    codegen_rows: dict[int, Any] | None = None,
) -> SimulationResult:
    """Parse and execute a mini-C OpenMP program on the simulated machine.

    The machine is selected by ``platform`` (a :class:`Platform`, a
    registry name, or None for the default A100/PCIe4 testbed); a raw
    ``cost_model`` may be passed instead for one-off experiments.

    Pass a pre-parsed ``tu`` (e.g. the pipeline's cached parse artifact)
    to skip the frontend entirely; the interpreter never mutates the
    AST, so sharing one translation unit between the tool and the
    simulator is safe.

    ``vectorize`` (default on) routes eligible offload loop nests
    through the NumPy executor of :mod:`repro.runtime.vectorize` —
    bit-identical results and profiler accounting, orders of magnitude
    faster on large kernels.  ``vectorize=False`` (CLI
    ``--no-vectorize``) forces the closure interpreter everywhere.
    """
    if tu is None:
        tu = parse_source(source, filename, predefined_macros)
    interp = Interpreter(
        tu,
        cost_model=cost_model,
        platform=platform,
        max_steps=max_steps,
        vectorize=vectorize,
        codegen_rows=codegen_rows,
    )
    return interp.run(entry)
