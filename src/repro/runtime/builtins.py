"""Host-library builtins of the simulated machine.

Math comes from :mod:`math`; ``printf`` renders with a C-format
translator and appends to the program's captured output (the
correctness-comparison channel, paper section VI); ``rand`` is a
deterministic LCG so all three program variants see identical inputs.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

from .values import NULL, ArrayObject, Pointer


class LCG:
    """glibc-style linear congruential generator — deterministic rand()."""

    MODULUS = 2**31
    MULTIPLIER = 1103515245
    INCREMENT = 12345

    def __init__(self, seed: int = 1):
        self.state = seed % self.MODULUS

    def srand(self, seed: int) -> None:
        self.state = int(seed) % self.MODULUS

    def rand(self) -> int:
        self.state = (self.MULTIPLIER * self.state + self.INCREMENT) % self.MODULUS
        return self.state & 0x7FFFFFFF


_FORMAT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|L|z|j|t)?[diouxXeEfgGcsp%]")


def _translate_spec(spec: str) -> str:
    """Map one C conversion spec to Python %-formatting."""
    if spec == "%%":
        return "%%"
    body = spec[1:]
    conv = body[-1]
    flags_width = re.sub(r"(?:hh|h|ll|l|L|z|j|t)$", "", body[:-1])
    if conv in ("i",):
        conv = "d"
    if conv == "p":
        conv = "s"
    return "%" + flags_width + conv


def c_printf(fmt: str, args: list[Any]) -> str:
    """Render a printf call; returns the produced text."""
    specs = _FORMAT_RE.findall(fmt)
    py_fmt = fmt
    for spec in set(specs):
        py_fmt = py_fmt.replace(spec, _translate_spec(spec))
    values: list[Any] = []
    arg_iter = iter(args)
    for spec in specs:
        if spec == "%%":
            continue
        val = next(arg_iter, 0)
        conv = spec[-1]
        if conv in "diouxX":
            val = int(val)
        elif conv in "eEfgG":
            val = float(val)
        elif conv == "c":
            val = chr(int(val)) if not isinstance(val, str) else val
            # Python %c accepts str
        elif conv == "s" and isinstance(val, Pointer):
            val = f"<ptr:{val.obj.name}+{val.offset}>"
        elif conv == "p":
            val = f"0x{id(val) & 0xFFFFFFFF:x}"
        values.append(val)
    try:
        return py_fmt % tuple(values)
    except (TypeError, ValueError):
        return fmt  # malformed format: echo the raw string


def make_math_builtins() -> dict[str, Callable[..., Any]]:
    """Pure numeric builtins (no machine state)."""

    def _clamped_exp(x: float) -> float:
        return math.exp(min(x, 700.0))

    return {
        "exp": lambda x: _clamped_exp(float(x)),
        "expf": lambda x: _clamped_exp(float(x)),
        "exp2": lambda x: 2.0 ** min(float(x), 1000.0),
        "log": lambda x: math.log(float(x)),
        "log2": lambda x: math.log2(float(x)),
        "log10": lambda x: math.log10(float(x)),
        "sqrt": lambda x: math.sqrt(max(float(x), 0.0)),
        "sqrtf": lambda x: math.sqrt(max(float(x), 0.0)),
        "cbrt": lambda x: math.copysign(abs(float(x)) ** (1.0 / 3.0), float(x)),
        "pow": lambda x, y: float(x) ** float(y),
        "powf": lambda x, y: float(x) ** float(y),
        "fabs": lambda x: abs(float(x)),
        "fabsf": lambda x: abs(float(x)),
        "abs": lambda x: abs(int(x)),
        "sin": lambda x: math.sin(float(x)),
        "cos": lambda x: math.cos(float(x)),
        "tan": lambda x: math.tan(float(x)),
        "tanh": lambda x: math.tanh(float(x)),
        "floor": lambda x: math.floor(float(x)),
        "ceil": lambda x: math.ceil(float(x)),
        "fmax": lambda x, y: max(float(x), float(y)),
        "fmin": lambda x, y: min(float(x), float(y)),
        "fmaxf": lambda x, y: max(float(x), float(y)),
        "fminf": lambda x, y: min(float(x), float(y)),
        "fmod": lambda x, y: math.fmod(float(x), float(y)),
        "atoi": lambda s: int(s) if isinstance(s, str) else 0,
        "atof": lambda s: float(s) if isinstance(s, str) else 0.0,
    }


def mem_set(ptr: Any, value: int, nbytes: int) -> Any:
    """``memset`` over an ArrayObject/Pointer target."""
    obj, offset = _resolve(ptr)
    if obj is None:
        return ptr
    elems = min(int(nbytes) // max(obj.elem_size, 1), obj.length - offset)
    if obj.is_struct:
        raise RuntimeError("memset over struct arrays is not supported")
    if int(value) != 0:
        raise RuntimeError("memset with non-zero fill is not supported")
    obj.data[offset : offset + elems] = 0
    return ptr


def mem_copy(dst: Any, src: Any, nbytes: int) -> Any:
    """``memcpy`` between array objects (host-side)."""
    dobj, doff = _resolve(dst)
    sobj, soff = _resolve(src)
    if dobj is None or sobj is None:
        return dst
    elems = int(nbytes) // max(dobj.elem_size, 1)
    if dobj.is_struct or sobj.is_struct:
        for i in range(elems):
            dobj.data[doff + i] = sobj.data[soff + i].copy()
    else:
        dobj.data[doff : doff + elems] = sobj.data[soff : soff + elems]
    return dst


def _resolve(ptr: Any) -> tuple[ArrayObject | None, int]:
    if isinstance(ptr, Pointer):
        return ptr.obj, ptr.offset
    if isinstance(ptr, ArrayObject):
        return ptr, 0
    if ptr is NULL or ptr == 0:
        return None, 0
    raise RuntimeError(f"not a pointer value: {ptr!r}")
