"""Analytic cost model for the simulated offload platform.

Calibrated to the paper's testbed shape (NVIDIA A100 over PCIe 4.0,
CUDA 11.8, Clang 17): transfers pay a fixed launch latency plus a
bandwidth term, kernels pay a launch overhead plus work divided by an
effective device throughput, host work runs at host throughput.

Absolute values are not the point — the *ratios* are: data transfer
must dominate unoptimized runs (paper Figs. 5/6 show 16x/2.9x/5.7x
end-to-end speedups from mapping changes alone), so per-byte transfer
cost is large relative to per-operation compute cost, as on the real
machine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Time parameters (seconds) of the simulated platform."""

    #: Fixed cost of one cudaMemcpy call (driver + PCIe latency).
    memcpy_latency_s: float = 10e-6
    #: Effective host<->device bandwidth (PCIe 4.0 x16 ~ 25 GB/s).
    memcpy_bandwidth_Bps: float = 25e9
    #: Fixed cost of one kernel launch.
    kernel_launch_s: float = 8e-6
    #: Effective per-work-unit time on the device (massively parallel).
    device_op_s: float = 1.5e-9
    #: Effective per-work-unit time on the host (single thread).
    host_op_s: float = 12e-9

    def memcpy_time(self, nbytes: int) -> float:
        """Modelled wall time of one host<->device copy."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.memcpy_latency_s + nbytes / self.memcpy_bandwidth_Bps

    def kernel_time(self, work_units: int) -> float:
        """Modelled wall time of one kernel execution."""
        return self.kernel_launch_s + work_units * self.device_op_s

    def host_time(self, work_units: int) -> float:
        return work_units * self.host_op_s


#: Default platform used by the evaluation harness.
A100_PCIE4 = CostModel()
