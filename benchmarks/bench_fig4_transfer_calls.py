"""Figure 4 — GPU data transfer activity in memcpy calls (lower is better).

Regenerates the call-count series and checks the paper's qualitative
claim: OMPDart gets at or below the expert's call count on every
application, strictly below on the firstprivate/struct benchmarks.
"""

from repro.report import figure4
from repro.suite import BENCHMARK_ORDER

# Paper: call reductions vs the expert on these apps.
PAPER_CALL_REDUCTIONS = {
    "clenergy": 0.66, "hotspot": 0.57, "nw": 0.33, "xsbench": 0.38,
}


def test_figure4_regenerates(evaluation_runs, capsys):
    series, text = figure4(evaluation_runs)
    assert set(series) == set(BENCHMARK_ORDER)
    with capsys.disabled():
        print("\n" + text)


def test_tool_call_counts_at_most_expert(evaluation_runs):
    # Paper: "OMPDart successfully reduced GPU data transfer activity in
    # terms of CUDA memcpy calls below the level of the expert mappings
    # in 6 of the benchmarks" (and matched on the rest).
    below = 0
    for name, run in evaluation_runs.items():
        tool = run.ompdart.stats.total_calls
        expert = run.expert.stats.total_calls
        assert tool <= expert, name
        if tool < expert:
            below += 1
    assert below >= 3


def test_firstprivate_and_struct_call_reductions(evaluation_runs):
    for name, paper_frac in PAPER_CALL_REDUCTIONS.items():
        measured = evaluation_runs[name].call_reduction_vs_expert
        assert measured >= paper_frac / 2, (name, measured, paper_frac)


def test_unoptimized_has_most_calls_everywhere(evaluation_runs):
    for name, run in evaluation_runs.items():
        assert (
            run.unoptimized.stats.total_calls > run.ompdart.stats.total_calls
        ), name
