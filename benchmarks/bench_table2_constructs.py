"""Table II — OpenMP constructs OMPDart inserts to resolve dependencies.

Regenerates the table and exercises one insertion of every construct
class through the full tool pipeline.
"""

from repro.core import TABLE_II, transform_source
from repro.report import table2

# A program whose transformation needs every Table II construct family:
# map(to:)/map(from:)/map(tofrom:)/map(alloc:), update to/from, and
# firstprivate.
_ALL_CONSTRUCTS_SRC = """
double in_data[32];
double out_data[32];
double inout[32];
double host_view;
int main() {
  double scratch[32];
  double scale = 2.0;
  for (int i = 0; i < 32; i++) { in_data[i] = i; inout[i] = 1.0; }
  #pragma omp target
  for (int i = 0; i < 32; i++) scratch[i] = in_data[i] * scale;
  host_view = 0.0;
  for (int i = 0; i < 32; i++) host_view += inout[i];
  inout[0] = host_view;
  #pragma omp target
  for (int i = 0; i < 32; i++) {
    out_data[i] = scratch[i] + inout[i];
    inout[i] = inout[i] * 0.5;
  }
  double check = out_data[0] + inout[0];
  printf("%f", check);
  return 0;
}
"""


def test_table2_regenerates(capsys):
    text = table2()
    for construct in TABLE_II:
        assert construct.split("(")[0] in text
    with capsys.disabled():
        print("\n" + text)


def test_every_construct_family_inserted():
    res = transform_source(_ALL_CONSTRUCTS_SRC, "constructs.c")
    out = res.output_source
    assert "map(to: " in out
    assert "map(alloc: scratch)" in out
    assert "tofrom" in out or "map(from:" in out
    assert "#pragma omp target update" in out
    assert "firstprivate(" in out


def test_bench_full_pipeline(benchmark):
    result = benchmark(transform_source, _ALL_CONSTRUCTS_SRC, "constructs.c")
    assert result.directive_count() >= 3
