"""Table IV — benchmark data-mapping complexity.

Regenerates the table from our reduced-scale sources (kernel counts
match the paper exactly; lines/variables scale with problem size) and
benchmarks the metric computation.
"""

from repro.report import table4
from repro.suite import BENCHMARK_ORDER, analyze_complexity, get_benchmark

PAPER_KERNELS = {
    "accuracy": 1, "ace": 6, "backprop": 2, "bfs": 2, "clenergy": 2,
    "hotspot": 1, "lulesh": 15, "nw": 2, "xsbench": 1,
}


def test_table4_regenerates(capsys):
    text = table4()
    for name in BENCHMARK_ORDER:
        assert name in text
    with capsys.disabled():
        print("\n" + text)


def test_kernel_counts_match_paper_exactly():
    for name, expected in PAPER_KERNELS.items():
        m = analyze_complexity(get_benchmark(name).unoptimized_source(), name)
        assert m.kernels == expected, (name, m.kernels)


def test_lulesh_dominates_complexity():
    metrics = {
        name: analyze_complexity(get_benchmark(name).unoptimized_source(), name)
        for name in BENCHMARK_ORDER
    }
    lulesh = metrics["lulesh"]
    for name, m in metrics.items():
        if name != "lulesh":
            assert lulesh.possible_mappings > m.possible_mappings


def test_bench_complexity_analysis(benchmark):
    sources = {
        name: get_benchmark(name).unoptimized_source()
        for name in BENCHMARK_ORDER
    }

    def compute_all():
        return [analyze_complexity(src, name) for name, src in sources.items()]

    results = benchmark(compute_all)
    assert len(results) == 9
