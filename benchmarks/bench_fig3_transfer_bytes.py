"""Figure 3 — GPU data transfer activity in bytes (lower is better).

Regenerates the per-application HtoD/DtoH byte series for the three
variants and checks the paper's headline reduction factors (shape, not
absolute bytes — our problem sizes are reduced).
"""

import pytest

from repro.report import figure3
from repro.suite import BENCHMARK_ORDER, get_benchmark, run_benchmark

# Paper section VI: unoptimized/OMPDart byte ratios.  We assert the same
# order of magnitude at our reduced problem sizes.
PAPER_RATIOS = {
    "ace": 1010, "accuracy": 400, "backprop": 2, "clenergy": 65,
    "bfs": 23, "hotspot": 1.2, "nw": 2, "xsbench": 20,
}


def test_figure3_regenerates(evaluation_runs, capsys):
    series, text = figure3(evaluation_runs)
    assert set(series) == set(BENCHMARK_ORDER)
    for per in series.values():
        assert per["OMPDart"]["HtoD"] <= per["Unoptimized"]["HtoD"]
        assert per["OMPDart"]["DtoH"] <= per["Unoptimized"]["DtoH"]
    with capsys.disabled():
        print("\n" + text)


def test_reduction_factors_track_paper(evaluation_runs):
    for name, paper_x in PAPER_RATIOS.items():
        measured = evaluation_runs[name].transfer_reduction_x
        # within one order of magnitude of the paper's factor
        assert measured >= paper_x / 10, (name, measured, paper_x)


def test_tool_never_exceeds_expert_bytes(evaluation_runs):
    for name, run in evaluation_runs.items():
        assert run.ompdart.stats.total_bytes <= run.expert.stats.total_bytes, name


@pytest.mark.parametrize("name", ["accuracy", "bfs", "lulesh"])
def test_bench_three_variant_simulation(benchmark, name):
    benchmark.pedantic(
        run_benchmark, args=(name,), kwargs={"verify": True},
        rounds=1, iterations=1,
    )
