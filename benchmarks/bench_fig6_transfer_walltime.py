"""Figure 6 — improvements in data-transfer wall time over unoptimized.

Regenerates the transfer-time series; checks the paper's shape: large
improvements everywhere, OMPDart >= expert (equal except lulesh, where
the expert's redundant updates cost ~20x).
"""

from repro.report import figure6
from repro.suite import BENCHMARK_ORDER, geometric_mean


def test_figure6_regenerates(evaluation_runs, capsys):
    series, text = figure6(evaluation_runs)
    assert set(series) == set(BENCHMARK_ORDER)
    with capsys.disabled():
        print("\n" + text)


def test_transfer_time_improves_everywhere(evaluation_runs):
    for name, run in evaluation_runs.items():
        assert run.transfer_time_improvement_x >= 1.0, name


def test_geomean_improvements(evaluation_runs):
    tool = geometric_mean(
        [r.transfer_time_improvement_x for r in evaluation_runs.values()]
    )
    expert = geometric_mean(
        [r.expert_transfer_time_improvement_x for r in evaluation_runs.values()]
    )
    # paper: 5.1x (OMPDart) vs 4.2x (expert)
    assert tool >= expert
    assert tool > 2.0


def test_lulesh_expert_pays_for_redundant_updates(evaluation_runs):
    run = evaluation_runs["lulesh"]
    tool_vs_expert = (
        run.expert.stats.transfer_time_s / run.ompdart.stats.transfer_time_s
    )
    # paper: ~20x transfer-time advantage for the tool on lulesh
    assert tool_vs_expert > 3.0
