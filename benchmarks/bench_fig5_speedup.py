"""Figure 5 — speedups over unoptimized OpenMP offload code.

Regenerates the speedup series on the simulated platform and checks the
paper's summary statistics in shape: every app at least breaks even,
transfer-dominated apps speed up the most, lulesh's tool mappings beat
the expert's by a wide margin, and the tool's geomean advantage over the
expert is small but positive.
"""

from repro.report import figure5
from repro.suite import BENCHMARK_ORDER, geometric_mean


def test_figure5_regenerates(evaluation_runs, capsys):
    series, text = figure5(evaluation_runs)
    assert set(series) == set(BENCHMARK_ORDER)
    with capsys.disabled():
        print("\n" + text)


def test_every_app_at_least_breaks_even(evaluation_runs):
    for name, run in evaluation_runs.items():
        assert run.speedup_x >= 1.0, name


def test_geomean_speedup_over_unoptimized(evaluation_runs):
    geo = geometric_mean([r.speedup_x for r in evaluation_runs.values()])
    # paper: 2.8x on the A100; the simulated platform must land in the
    # same regime (transfers dominate unoptimized runs).
    assert 1.5 < geo < 8.0, geo


def test_geomean_speedup_over_expert(evaluation_runs):
    geo = geometric_mean(
        [
            r.ompdart.stats.speedup_over(r.expert.stats)
            for r in evaluation_runs.values()
        ]
    )
    # paper: 1.05x — small but >= 1.
    assert 1.0 <= geo < 1.5, geo


def test_lulesh_beats_expert_by_large_factor(evaluation_runs):
    run = evaluation_runs["lulesh"]
    assert run.ompdart.stats.speedup_over(run.expert.stats) > 1.3  # paper 1.6x


def test_biggest_winners_are_transfer_bound(evaluation_runs):
    # ace and xsbench show the largest paper speedups (16x / 5.7x):
    # they must rank above the median here too.
    speedups = {n: r.speedup_x for n, r in evaluation_runs.items()}
    ranked = sorted(speedups, key=speedups.get, reverse=True)
    assert "ace" in ranked[:4]
    assert "xsbench" in ranked[:4]
