"""Table I — AST nodes recognized as offload kernels.

Regenerates the table and benchmarks directive recognition over a
source containing every Table I directive.
"""

from repro.frontend import ast_nodes as A
from repro.frontend import parse_source
from repro.frontend.ast_nodes import OFFLOAD_KERNEL_DIRECTIVES
from repro.report import table1


def _source_with_all_directives() -> str:
    body = ["int a[8];", "int main() {"]
    for spelling in OFFLOAD_KERNEL_DIRECTIVES.values():
        pragma = "#pragma " + spelling
        body.append(pragma)
        body.append("for (int i = 0; i < 8; i++) a[i] = i;")
    body.append("return 0;")
    body.append("}")
    return "\n".join(body)


def test_table1_regenerates(capsys):
    text = table1()
    assert "OMPTargetDirective" in text
    assert "omp target teams distribute parallel for simd" in text
    assert len(text.strip().splitlines()) == 12 + 2  # rows + header + rule
    with capsys.disabled():
        print("\n" + text)


def test_all_table1_directives_recognized():
    tu = parse_source(_source_with_all_directives(), "all_directives.c")
    kernels = [n for n in tu.walk() if A.is_offload_kernel(n)]
    assert len(kernels) == len(OFFLOAD_KERNEL_DIRECTIVES)
    assert {type(k) for k in kernels} == set(OFFLOAD_KERNEL_DIRECTIVES)


def test_bench_directive_recognition(benchmark):
    src = _source_with_all_directives()

    def parse_and_count():
        tu = parse_source(src, "bench.c")
        return sum(1 for n in tu.walk() if A.is_offload_kernel(n))

    count = benchmark(parse_and_count)
    assert count == 12
