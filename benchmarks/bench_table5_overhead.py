"""Table V — OMPDart tool execution time per benchmark.

This is the paper's tool-overhead measurement (their average was 0.29 s,
with lulesh the largest at 1.35 s).  pytest-benchmark measures our tool
on each application's unoptimized source.
"""

import pytest

from repro.core import OMPDart
from repro.report import table5
from repro.suite import BENCHMARK_ORDER, get_benchmark


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_bench_tool_execution_time(benchmark, name):
    source = get_benchmark(name).unoptimized_source()
    tool = OMPDart()
    result = benchmark(tool.run, source, f"{name}.c")
    assert result.plans, "tool must produce a plan for every benchmark"


def test_table5_regenerates(capsys):
    tool = OMPDart()
    timings = {}
    for name in BENCHMARK_ORDER:
        res = tool.run(get_benchmark(name).unoptimized_source(), f"{name}.c")
        timings[name] = res.elapsed_seconds
    text = table5(timings)
    assert "lulesh" in text and "(average)" in text
    with capsys.disabled():
        print("\n" + text)


def test_lulesh_is_the_slowest_to_analyze():
    # Paper: lulesh, with 15 kernels, had the greatest overhead.
    tool = OMPDart()
    timings = {
        name: tool.run(
            get_benchmark(name).unoptimized_source(), f"{name}.c"
        ).elapsed_seconds
        for name in BENCHMARK_ORDER
    }
    assert max(timings, key=timings.get) == "lulesh"
