"""Shared fixtures for the evaluation harness.

The nine-application, three-variant simulation sweep is the expensive
part, so it runs once per session and feeds Figures 3-6.
"""

import pytest

from repro.suite import run_all


@pytest.fixture(scope="session")
def evaluation_runs():
    """All nine benchmarks, three variants each, outputs verified."""
    return run_all(verify=True)
