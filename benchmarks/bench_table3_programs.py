"""Table III — the nine evaluation programs.

Regenerates the table and benchmarks parsing of the whole suite.
"""

from repro.frontend import parse_source
from repro.report import table3
from repro.suite import BENCHMARK_ORDER, get_benchmark


def test_table3_regenerates(capsys):
    text = table3()
    for name in BENCHMARK_ORDER:
        assert name in text
    assert "Rodinia" in text and "HeCBench" in text
    with capsys.disabled():
        print("\n" + text)


def test_every_program_parses_both_variants():
    for name in BENCHMARK_ORDER:
        bench = get_benchmark(name)
        parse_source(bench.unoptimized_source(), f"{name}_unoptimized.c")
        parse_source(bench.expert_source(), f"{name}_expert.c")


def test_bench_parse_suite(benchmark):
    sources = [
        get_benchmark(name).unoptimized_source() for name in BENCHMARK_ORDER
    ]

    def parse_all():
        return [parse_source(s, "b.c") for s in sources]

    tus = benchmark(parse_all)
    assert len(tus) == 9
