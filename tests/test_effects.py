"""Tests for the interprocedural side-effect analysis (section IV-C)."""

from repro.analysis import AccessKind, InterproceduralAnalysis
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source


def analyze(src):
    tu = parse_source(src, "t.c")
    return tu, InterproceduralAnalysis(tu)


class TestParameterEffects:
    def test_write_through_pointer_param(self):
        tu, ipa = analyze("void f(double *p) { p[0] = 1.0; }")
        assert ipa.summaries["f"].param_effects[0].writes

    def test_read_through_pointer_param(self):
        tu, ipa = analyze("double f(double *p) { return p[0]; }")
        eff = ipa.summaries["f"].param_effects[0]
        assert eff.reads and not eff.writes

    def test_readwrite_param(self):
        tu, ipa = analyze("void f(int *p) { p[0] += 1; }")
        assert ipa.summaries["f"].param_effects[0] is AccessKind.READWRITE

    def test_scalar_param_no_effect(self):
        tu, ipa = analyze("int f(int x) { x = 3; return x; }")
        assert ipa.summaries["f"].param_effects == {}

    def test_pointer_value_read_is_not_an_effect(self):
        # comparing the pointer itself does not touch pointed-to data
        tu, ipa = analyze("int f(int *p) { return p == 0; }")
        assert 0 not in ipa.summaries["f"].param_effects


class TestGlobalEffects:
    def test_global_write(self):
        tu, ipa = analyze("int g;\nvoid f() { g = 1; }")
        assert ipa.summaries["f"].global_effects["g"].writes

    def test_global_read(self):
        tu, ipa = analyze("int g;\nint f() { return g; }")
        eff = ipa.summaries["f"].global_effects["g"]
        assert eff.reads and not eff.writes

    def test_global_array_element_write(self):
        tu, ipa = analyze("double g[8];\nvoid f(int i) { g[i] = 0.0; }")
        assert ipa.summaries["f"].global_effects["g"].writes


class TestTransitivity:
    def test_effects_propagate_through_calls(self):
        src = """
        void inner(double *p) { p[0] = 1.0; }
        void outer(double *q) { inner(q); }
        """
        tu, ipa = analyze(src)
        assert ipa.summaries["outer"].param_effects[0].writes

    def test_three_level_chain(self):
        src = """
        int g;
        void c() { g = 1; }
        void b() { c(); }
        void a() { b(); }
        """
        tu, ipa = analyze(src)
        assert ipa.summaries["a"].global_effects["g"].writes

    def test_recursive_function_terminates(self):
        src = "int g;\nvoid f(int n) { if (n > 0) { g += 1; f(n - 1); } }"
        tu, ipa = analyze(src)
        assert ipa.summaries["f"].global_effects["g"] is AccessKind.READWRITE

    def test_mutual_recursion_terminates(self):
        src = """
        int g;
        void odd(int n);
        void even(int n) { if (n > 0) odd(n - 1); else g = 0; }
        void odd(int n) { if (n > 0) even(n - 1); else g = 1; }
        """
        tu, ipa = analyze(src)
        assert ipa.summaries["even"].global_effects["g"].writes
        assert ipa.summaries["odd"].global_effects["g"].writes

    def test_early_fixpoint_exit(self):
        tu, ipa = analyze("void f() {}\nvoid h() { f(); }")
        # one productive pass plus one confirming pass at most
        assert ipa.passes_run <= 2


class TestConservativeDefaults:
    def test_prototype_pointer_is_unknown(self):
        src = "void ext(double *p);\nvoid f(double *q) { ext(q); }"
        tu, ipa = analyze(src)
        assert ipa.summaries["f"].param_effects[0] is AccessKind.UNKNOWN

    def test_prototype_const_pointer_is_read(self):
        src = "void ext(const double *p);\nvoid f(double *q) { ext(q); }"
        tu, ipa = analyze(src)
        eff = ipa.summaries["f"].param_effects[0]
        assert eff.reads and not eff.writes

    def test_builtin_math_has_no_effects(self):
        tu, ipa = analyze("double f(double x) { return sqrt(x) + exp(x); }")
        assert ipa.summaries["f"].param_effects == {}
        assert ipa.summaries["f"].global_effects == {}

    def test_memset_writes_argument(self):
        src = "void f(double *p) { memset(p, 0, 64); }"
        tu, ipa = analyze(src)
        assert ipa.summaries["f"].param_effects[0].writes

    def test_memcpy_direction(self):
        src = "void f(double *dst, double *s) { memcpy(dst, s, 64); }"
        tu, ipa = analyze(src)
        assert ipa.summaries["f"].param_effects[0].writes
        assert ipa.summaries["f"].param_effects[1].reads
        assert not ipa.summaries["f"].param_effects[1].writes


class TestCallSiteResolution:
    def test_resolve_node_accesses_includes_callee_globals(self):
        src = """
        int g;
        void bump() { g += 1; }
        int main() { bump(); return g; }
        """
        tu, ipa = analyze(src)
        main = tu.lookup_function("main")
        call_stmt = main.body.stmts[0]
        accs = ipa.resolve_node_accesses(call_stmt)
        by_name = {a.name: a.kind for a in accs}
        assert by_name["g"] is AccessKind.READWRITE

    def test_resolution_maps_args_to_caller_vars(self):
        src = """
        void fill(double *p) { p[0] = 1.0; }
        int main() { double buf[4]; fill(buf); return 0; }
        """
        tu, ipa = analyze(src)
        main = tu.lookup_function("main")
        call_stmt = main.body.stmts[1]
        accs = ipa.resolve_node_accesses(call_stmt)
        buf = [a for a in accs if a.name == "buf"]
        assert buf and buf[0].kind.writes

    def test_condition_scoped_resolution(self):
        # calls in an if body must not leak into the if-condition node
        src = """
        int g;
        void bump() { g += 1; }
        int main() { int x = 1; if (x) { bump(); } return 0; }
        """
        tu, ipa = analyze(src)
        main = tu.lookup_function("main")
        if_stmt = next(main.walk_instances(A.IfStmt))
        accs = ipa.resolve_node_accesses(if_stmt)
        assert all(a.name != "g" for a in accs)
