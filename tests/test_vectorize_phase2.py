"""Phase-2 vectorizer: masked bodies, wavefront slices, nest collapse,
math ufuncs, the dependence classifier, and host-loop execution.

The contract is the same absolute one PR 3 established: for every
program the simulator can run, ``vectorize=True`` and
``vectorize=False`` must produce bit-identical output text, transfer
stats, step ledgers and kernel-launch counts — across every strategy,
including launches a strategy declines at runtime.
"""

import numpy as np
import pytest

from repro.analysis.depend import (
    WavefrontObligation,
    flatten_chain,
    intra_slice_dependence,
    uniform_distance,
)
from repro.runtime import vectorize as V
from repro.runtime.interp import run_simulation


def both(source, name="<test>", **kwargs):
    interp = run_simulation(source, name, vectorize=False, **kwargs)
    vec = run_simulation(source, name, vectorize=True, **kwargs)
    return interp, vec


def assert_identical(a, b):
    assert a.output == b.output
    assert a.return_code == b.return_code
    assert a.stats == b.stats  # calls, bytes, times, launches — all of it
    assert a.profiler.records == b.profiler.records
    assert a.profiler.device_work == b.profiler.device_work
    assert a.profiler.host_work == b.profiler.host_work


# ---------------------------------------------------------------------------
# Masked bodies
# ---------------------------------------------------------------------------


def test_masked_if_guarded_division_does_not_fault():
    """Division in an ``if`` body evaluates only on the guard's lanes —
    the zero divisors on the discarded lanes are never touched."""
    src = """
    int n[16];
    int d[16];
    int out[16];
    int main() {
      for (int i = 0; i < 16; i++) { n[i] = i * 7; d[i] = i % 4; out[i] = 0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        if (d[i] != 0) {
          out[i] = n[i] / d[i];
        } else {
          out[i] = -1;
        }
      }
      int s = 0;
      for (int i = 0; i < 16; i++) { s += out[i] * (i + 1); }
      printf("s %d\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "masked"
    assert vec.vectorized_launches == 1


def test_masked_int64_overflow_matches_interpreter():
    """Products that exceed int64 on the *active* lanes escalate to
    exact Python ints (the PR 3 grow-op, now under compression); values
    that would overflow only on masked-off lanes are never computed."""
    src = """
    long a[8];
    long out[8];
    int main() {
      for (int i = 0; i < 8; i++) { a[i] = 10000000000 * (i + 1); out[i] = 0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i++) {
        if (a[i] < 50000000000) {
          out[i] = a[i] * a[i] / (a[i] / 1000);
        }
      }
      long s = 0;
      for (int i = 0; i < 8; i++) { s += out[i] / 1000; }
      printf("s %ld\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "masked"
    assert "100000000000" in vec.output


def test_masked_shared_scalar_assignment():
    """bfs's ``stop = 0`` shape: a shared scalar assigned under a
    lane-varying guard takes the last active lane's value (and stays
    untouched when no lane is active)."""
    src = """
    int flag[32];
    int found;
    int main() {
      found = 0;
      for (int i = 0; i < 32; i++) { flag[i] = (i == 13 || i == 27); }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 32; i++) {
        if (flag[i]) {
          found = 1;
        }
      }
      printf("found %d\\n", found);
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 32; i++) {
        if (flag[i] > 100) {
          found = 7;
        }
      }
      printf("still %d\\n", found);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "masked"
    assert vec.vectorized_launches == 2
    assert "found 1" in vec.output and "still 1" in vec.output


def test_ragged_inner_loop_accumulates_in_lane_order():
    """Lane-varying trip counts (bfs's CSR walk): per-lane accumulation
    happens in each lane's own ascending order, so float rounding is
    exactly the interpreter's."""
    src = """
    int starts[9];
    double w[32];
    double out[8];
    int main() {
      for (int i = 0; i < 9; i++) { starts[i] = (i * 7) / 2; }
      for (int t = 0; t < 32; t++) { w[t] = t * 0.25 - 3.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i++) {
        out[i] = 0.0;
        for (int t = starts[i]; t < starts[i + 1]; t++) {
          out[i] += w[t] * 1.5;
        }
      }
      double s = 0.0;
      for (int i = 0; i < 8; i++) { s += out[i] * (i + 1); }
      printf("s %.10f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "masked"
    assert vec.vectorized_launches == 1


def test_masked_scatter_with_unique_targets_commits():
    """Data-dependent stores commit through the deferred buffer when
    the launch-time checks prove the targets pairwise distinct."""
    src = """
    int idx[16];
    double a[16];
    double out[16];
    int main() {
      for (int i = 0; i < 16; i++) {
        idx[i] = (i * 5) % 16;
        a[i] = i * 0.5;
        out[i] = -1.0;
      }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        if (a[i] > 1.0) {
          out[idx[i]] = a[i] + 0.25;
        }
      }
      double s = 0.0;
      for (int i = 0; i < 16; i++) { s += out[i] * (i + 1); }
      printf("s %.6f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "masked"
    assert vec.vectorized_launches == 1


def test_masked_scatter_collision_declines_to_replay():
    """Duplicate scatter targets make the result lane-order dependent:
    the commit check declines and the sequential replay executes the
    launch — bit-identically, via the last-write-wins the interpreter
    produced."""
    src = """
    int idx[16];
    double out[4];
    int main() {
      for (int i = 0; i < 16; i++) { idx[i] = i % 4; }
      for (int i = 0; i < 4; i++) { out[i] = 0.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        out[idx[i]] = i * 1.5;
      }
      printf("%.1f %.1f %.1f %.1f\\n", out[0], out[1], out[2], out[3]);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "wavefront"  # the replay engine
    assert vec.vectorized_launches == 1


# ---------------------------------------------------------------------------
# Wavefront slicing + the dependence classifier
# ---------------------------------------------------------------------------


def test_wavefront_anti_diagonal_dp():
    """nw's shape: slice-ordered replay of an anti-diagonal recurrence,
    with the ``int j = t - i`` local forwarded into the affine
    subscripts."""
    src = """
    int m[144];
    int main() {
      for (int k = 0; k < 144; k++) { m[k] = k % 5; }
      #pragma omp target
      for (int t = 2; t < 12; t++) {
        for (int i = 1; i < t; i++) {
          int j = t - i;
          m[i * 12 + j] = m[(i - 1) * 12 + (j - 1)] + m[i * 12 + (j - 1)];
        }
      }
      int s = 0;
      for (int k = 0; k < 144; k++) { s += m[k] * (k % 7); }
      printf("s %d\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "wavefront"
    assert vec.vectorized_launches == 1


def test_wavefront_intra_slice_dependence_replays_sequentially():
    """A same-slice carried distance (read one lane over in the same
    diagonal) fails the launch-time classification; the sequential
    replay still executes the nest exactly."""
    src = """
    int m[144];
    int main() {
      for (int k = 0; k < 144; k++) { m[k] = (k * 3) % 11; }
      #pragma omp target
      for (int t = 1; t < 12; t++) {
        for (int i = 1; i < 12; i++) {
          m[i * 12 + t] = m[(i - 1) * 12 + t] + 1;
        }
      }
      int s = 0;
      for (int k = 0; k < 144; k++) { s += m[k] * (k % 5); }
      printf("s %d\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_depend_flatten_and_uniform_distance():
    # m[i*12 + j] with j = t - i substituted: coeffs {i: 11, t: 1}
    write = flatten_chain([({"i": 11, "t": 1}, 0)], (144,))
    read = flatten_chain([({"i": 11, "t": 1}, -2)], (144,))
    assert write == ({"i": 11, "t": 1}, 0)
    assert uniform_distance(write, read) == -2
    # different coefficients: no uniform distance
    assert uniform_distance(({"i": 2}, 0), ({"i": 3}, 0)) is None
    # multi-dim flattening uses trailing-extent strides
    flat = flatten_chain([({"i": 1}, -1), ({"t": 1, "i": -1}, 0)], (12, 12))
    assert flat == ({"i": 11, "t": 1}, -12)


def test_depend_intra_slice_classification():
    # nw: delta -2, lane coeff 11 — 11 does not divide 2: safe
    assert intra_slice_dependence(
        ({"i": 11, "t": 1}, 0), ({"i": 11, "t": 1}, -2), "t"
    ) is False
    # same-cell (delta 0) is lane-local: safe
    assert intra_slice_dependence(
        ({"i": 11, "t": 1}, 0), ({"i": 11, "t": 1}, 0), "t"
    ) is False
    # divisible delta: a same-slice collision is possible
    assert intra_slice_dependence(
        ({"i": 12, "t": 1}, 0), ({"i": 12, "t": 1}, -12), "t"
    ) is True
    # non-uniform pair: unclassifiable
    assert intra_slice_dependence(
        ({"i": 12, "t": 1}, 0), ({"i": 6, "t": 1}, 0), "t"
    ) is None
    # no lane symbol: unclassifiable
    assert intra_slice_dependence(({"t": 1}, 0), ({"t": 1}, -1), "t") is None


def test_depend_obligation_round_trip():
    ob = WavefrontObligation.make(
        3, [({"i": 1}, 0), ({"t": 1, "i": -1}, 0)],
        [({"i": 1}, -1), ({"t": 1, "i": -1}, -1)],
    )
    assert ob.slot == 3
    assert ob.holds((12, 12), "t")  # delta -13, coeff 11: safe
    bad = WavefrontObligation.make(
        0, [({"i": 1}, 0)], [({"i": 1}, -3)],
    )
    assert not bad.holds((12,), "t")  # delta divisible by coeff 1


# ---------------------------------------------------------------------------
# Nest collapse
# ---------------------------------------------------------------------------


def test_collapse_perfect_nest():
    """backprop's shape: both loop levels become the lane space, the
    store stays injective via the mixed-radix dominance check."""
    src = """
    double a[64];
    double w[16];
    int main() {
      for (int k = 0; k < 16; k++) { w[k] = k * 0.125; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 16; j++) {
          a[i * 16 + j] = w[j] * (i + 1);
        }
      }
      double s = 0.0;
      for (int k = 0; k < 64; k++) { s += a[k] * (k % 3); }
      printf("s %.6f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "collapse"
    assert vec.vectorized_launches == 1


def test_collapse_reduction_accumulates_in_lex_order():
    """A shared float accumulation inside the collapsed level replays
    sequential rounding over the flattened (lexicographic) lane order —
    exactly the interpreter's iteration order."""
    src = """
    double a[48];
    int main() {
      for (int k = 0; k < 48; k++) { a[k] = (k % 7) * 0.3 - 0.9; }
      double total = 0.0;
      #pragma omp target teams distribute parallel for reduction(+:total)
      for (int i = 0; i < 6; i++) {
        for (int j = 0; j < 8; j++) {
          total += a[i * 8 + j] * 1.25;
        }
      }
      printf("%.17f\\n", total);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "collapse"


def test_collapse_declines_to_sequential_inner_when_not_injective():
    """``a[i] = a[i] + j`` is not injective over the collapsed (i, j)
    space; the compiler retries with the inner loop sequential (the
    PR 3 lowering) instead of giving up."""
    src = """
    int a[4];
    int main() {
      for (int i = 0; i < 4; i++) { a[i] = 0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
          a[i] = a[i] + j;
        }
      }
      printf("%d %d %d %d\\n", a[0], a[1], a[2], a[3]);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "codegen"
    assert vec.vectorized_launches == 1


# ---------------------------------------------------------------------------
# Math ufuncs + the libm-parity gate
# ---------------------------------------------------------------------------


UFUNC_SRC = """
double a[64];
double out[64];
int main() {
  for (int i = 0; i < 64; i++) { a[i] = (i - 20) * 0.37; }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; i++) {
    out[i] = sqrt(a[i]) + fabs(a[i]) * exp(a[i] * 0.01);
  }
  double s = 0.0;
  for (int i = 0; i < 64; i++) { s += out[i]; }
  printf("s %.17f\\n", s);
  return 0;
}
"""


def test_ufunc_calls_vectorize_bit_identically():
    interp, vec = both(UFUNC_SRC)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "ufunc"
    assert vec.vectorized_launches == 1


def test_ufunc_parity_gate_failure_uses_scalar_libm_path(monkeypatch):
    """A NumPy build whose exp rounds differently from libm must not
    change results: the gate drops exp to the per-lane libm loop while
    the nest stays vectorized."""
    monkeypatch.setitem(V._UFUNC_PARITY, "exp", False)
    interp, vec = both(UFUNC_SRC)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_ufunc_parity_probe_runs_and_caches(monkeypatch):
    monkeypatch.delitem(V._UFUNC_PARITY, "exp", raising=False)
    spec = V._VEC_CALLS["exp"]
    import math

    verdict = V._parity_ok("exp", spec[1], lambda x: math.exp(min(x, 700.0)), 1)
    assert isinstance(verdict, bool)
    assert V._UFUNC_PARITY["exp"] is verdict
    # a deliberately wrong lowering fails the probe
    monkeypatch.delitem(V._UFUNC_PARITY, "exp", raising=False)
    assert V._parity_ok(
        "exp", lambda v: np.exp(v) + 1e-13, lambda x: math.exp(min(x, 700.0)), 1
    ) is False
    monkeypatch.delitem(V._UFUNC_PARITY, "exp", raising=False)


def test_log_domain_error_matches_interpreter():
    """log(-x) raises ValueError per-lane in the interpreter; the
    vector lowering guards the domain and falls to the scalar path,
    which raises identically."""
    src = """
    double a[8];
    double out[8];
    int main() {
      for (int i = 0; i < 8; i++) { a[i] = i - 3.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i++) {
        out[i] = log(a[i]);
      }
      return 0;
    }
    """
    for vectorize in (False, True):
        with pytest.raises(ValueError):
            run_simulation(src, "<t>", vectorize=vectorize)


def test_fmin_nan_asymmetry_matches_python_min():
    """builtins fmin is Python's min (asymmetric under NaN); the vector
    lowering must replicate it, not np.minimum/np.fmin."""
    src = """
    double a[4];
    double out[4];
    int main() {
      a[0] = 0.0 / 1.0;
      for (int i = 1; i < 4; i++) { a[i] = i * 1.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 4; i++) {
        out[i] = fmin(a[i], 2.0) + fmax(a[i], 1.5);
      }
      double s = 0.0;
      for (int i = 0; i < 4; i++) { s += out[i]; }
      printf("s %.6f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


# ---------------------------------------------------------------------------
# Host-loop execution
# ---------------------------------------------------------------------------


def test_host_loops_vectorize_bit_identically():
    """Pure host code (no directives) routes through the same executor:
    identical output, host tick ledger and zero kernel launches."""
    src = """
    double a[256];
    double b[256];
    int main() {
      for (int i = 0; i < 256; i++) {
        a[i] = (i % 9) * 0.125;
        b[i] = 0.0;
      }
      for (int i = 0; i < 256; i++) {
        b[i] = a[i] * 2.0 + 1.0;
      }
      double s = 0.0;
      for (int i = 0; i < 256; i++) { s += b[i]; }
      printf("s %.10f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.stats.kernel_launches == 0
    assert vec.vectorized_launches == 0
    assert vec.strategy_launches == {}


def test_host_loop_around_kernel_stays_interpreted_kernel_vectorizes():
    src = """
    double a[64];
    int main() {
      for (int i = 0; i < 64; i++) { a[i] = i * 0.5; }
      for (int t = 0; t < 3; t++) {
        #pragma omp target teams distribute parallel for
        for (int i = 0; i < 64; i++) {
          a[i] = a[i] * 1.5 + t;
        }
      }
      double s = 0.0;
      for (int i = 0; i < 64; i++) { s += a[i]; }
      printf("s %.8f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == vec.stats.kernel_launches == 3
    assert vec.vector_strategy == "codegen"


# ---------------------------------------------------------------------------
# Strategy bookkeeping
# ---------------------------------------------------------------------------


def test_strategy_rank_covers_all_labels():
    assert set(V.STRATEGY_RANK) == {
        "interpreter", "wavefront", "masked", "collapse", "ufunc", "straight",
        "codegen",
    }
    assert V.STRATEGY_RANK["interpreter"] == 0
    assert (
        V.STRATEGY_RANK["wavefront"]
        < V.STRATEGY_RANK["masked"]
        < V.STRATEGY_RANK["collapse"]
        < V.STRATEGY_RANK["ufunc"]
        < V.STRATEGY_RANK["straight"]
    )


def test_no_vectorize_reports_interpreter_strategy():
    src = """
    double a[8];
    int main() {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i++) { a[i] = i * 2.0; }
      printf("%.1f\\n", a[7]);
      return 0;
    }
    """
    off = run_simulation(src, "<t>", vectorize=False)
    assert off.vector_strategy == "interpreter"
    assert off.fallback_reason == "vectorization disabled (--no-vectorize)"
    on = run_simulation(src, "<t>", vectorize=True)
    assert on.vector_strategy == "codegen"
    assert on.fallback_reason is None


def test_wavefront_pairwise_write_obligations():
    """Every pair of distinct store chains gets its own intra-slice
    obligation: here the *second and third* stores collide across lanes
    (delta 2 against lane gap 2) while each passes against the first —
    the launch must decline to the sequential replay, bit-identically."""
    src = """
    int a[220];
    int main() {
      for (int k = 0; k < 220; k++) { a[k] = k % 7; }
      #pragma omp target
      for (int t = 1; t < 10; t++) {
        for (int i = 1; i < 8; i++) {
          a[t * 20 + 2 * i] = i;
          a[t * 20 + 2 * i + 1] = 100 + i;
          a[t * 20 + 2 * i + 3] = 200 + i;
        }
      }
      int s = 0;
      for (int k = 0; k < 220; k++) { s += a[k] * (k % 13); }
      printf("s %d\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1
