"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AccessKind
from repro.analysis.validity import VarState
from repro.frontend.ctypes_ import DOUBLE
from repro.frontend.lexer import tokenize
from repro.frontend.source import SourceBuffer
from repro.frontend.tokens import TokenKind
from repro.rewrite.buffer import RewriteBuffer
from repro.runtime import DeviceDataEnvironment, Profiler
from repro.runtime.builtins import LCG
from repro.runtime.costmodel import CostModel
from repro.runtime.values import ArrayObject, Cell

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_ident = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True)


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_int_literal_roundtrip(self, value):
        (tok,) = tokenize(str(value))[:-1]
        assert tok.kind is TokenKind.INT_LITERAL
        assert tok.value == value

    @given(st.floats(min_value=0.001, max_value=1e9,
                     allow_nan=False, allow_infinity=False))
    def test_float_literal_roundtrip(self, value):
        text = repr(float(value))
        if "e" in text or "E" in text:
            return  # repr may produce exponents with '-' sign: fine but
            # the leading sign lexes as a separate token; skip
        (tok,) = tokenize(text)[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert math.isclose(tok.value, value, rel_tol=1e-12)

    @given(st.lists(_ident, min_size=1, max_size=8))
    def test_identifier_stream_preserved(self, names):
        text = " ".join(names)
        toks = tokenize(text)[:-1]
        assert [t.text for t in toks] == names

    @given(st.text(alphabet="+-*/%<>=!&|^~", min_size=1, max_size=4))
    def test_operator_maximal_munch_covers_input(self, ops):
        if "//" in ops or "/*" in ops:
            return  # comment introducers, not operators
        try:
            toks = tokenize(ops)[:-1]
        except Exception:
            return  # some sequences are genuinely invalid (e.g. lone '!')
        assert "".join(t.text for t in toks) == ops

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   max_size=60))
    def test_offsets_monotonic(self, text):
        try:
            toks = tokenize(text)
        except Exception:
            return
        offsets = [t.location.offset for t in toks]
        assert offsets == sorted(offsets)

    @given(st.text(max_size=200))
    def test_source_buffer_line_col_consistent(self, text):
        buf = SourceBuffer(text)
        for offset in range(0, len(text) + 1, max(1, len(text) // 7 or 1)):
            line, col = buf.line_col(offset)
            assert 1 <= line <= buf.line_count
            assert col >= 1
            assert buf.line_start_offset(line) + col - 1 == offset


# ---------------------------------------------------------------------------
# Access-kind lattice
# ---------------------------------------------------------------------------

_kinds = st.sampled_from(list(AccessKind))


class TestAccessKindLattice:
    @given(_kinds, _kinds)
    def test_join_commutative(self, a, b):
        assert a.join(b) is b.join(a)

    @given(_kinds, _kinds, _kinds)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) is a.join(b.join(c))

    @given(_kinds)
    def test_join_idempotent(self, a):
        assert a.join(a) is a

    @given(_kinds, _kinds)
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert j.reads >= a.reads and j.reads >= b.reads or j is AccessKind.UNKNOWN
        assert (j.writes or not a.writes) and (j.writes or not b.writes)


# ---------------------------------------------------------------------------
# Validity lattice
# ---------------------------------------------------------------------------

_states = st.builds(VarState, st.booleans(), st.booleans())


class TestVarStateLattice:
    @given(_states, _states)
    def test_meet_commutative(self, a, b):
        assert a.meet(b) == b.meet(a)

    @given(_states, _states, _states)
    def test_meet_associative(self, a, b, c):
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    @given(_states)
    def test_meet_idempotent(self, a):
        assert a.meet(a) == a

    @given(_states, _states)
    def test_meet_is_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.valid_host <= a.valid_host and m.valid_host <= b.valid_host
        assert m.valid_dev <= a.valid_dev and m.valid_dev <= b.valid_dev

    @given(_states, st.sampled_from(["host", "device"]))
    def test_write_makes_exactly_one_space_valid(self, s, space):
        from repro.analysis.validity import Space

        sp = Space.HOST if space == "host" else Space.DEVICE
        w = s.after_write(sp)
        assert w.valid_in(sp)
        assert not w.valid_in(Space.DEVICE if sp is Space.HOST else Space.HOST)


# ---------------------------------------------------------------------------
# Device data environment refcounts
# ---------------------------------------------------------------------------

_map_types = st.sampled_from(["to", "from", "tofrom", "alloc"])


class TestDeviceRefcountProperties:
    @given(st.lists(st.tuples(st.booleans(), _map_types), max_size=24))
    def test_refcount_never_negative_and_balanced(self, ops):
        env = DeviceDataEnvironment(Profiler())
        obj = ArrayObject("a", 8, DOUBLE)
        depth = 0
        for entering, map_type in ops:
            if entering:
                env.map_enter(obj, map_type)
                depth += 1
            else:
                env.map_exit(obj, map_type)
                depth = max(depth - 1, 0)
            assert env.refcount(obj) == depth
            assert env.present(obj) == (depth > 0)

    @given(st.integers(min_value=1, max_value=10), _map_types)
    def test_nested_regions_copy_at_most_once_each_way(self, depth, map_type):
        env = DeviceDataEnvironment(Profiler())
        obj = ArrayObject("a", 8, DOUBLE)
        for _ in range(depth):
            env.map_enter(obj, map_type)
        for _ in range(depth):
            env.map_exit(obj, map_type)
        assert env.profiler.h2d_calls <= 1
        assert env.profiler.d2h_calls <= 1
        assert not env.present(obj)

    @given(st.integers(min_value=0, max_value=6))
    def test_update_counts_exactly(self, n):
        env = DeviceDataEnvironment(Profiler())
        cell = Cell("x", 1, 4)
        env.map_enter(cell, "alloc")
        for _ in range(n):
            env.update_to(cell)
        assert env.profiler.h2d_calls == n
        assert env.profiler.h2d_bytes == 4 * n


# ---------------------------------------------------------------------------
# Rewrite buffer
# ---------------------------------------------------------------------------


class TestRewriteBufferProperties:
    @given(
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=80),
        st.lists(st.tuples(st.integers(min_value=0, max_value=80),
                           st.text(alphabet="xyz\n", min_size=1, max_size=5)),
                 max_size=8),
    )
    def test_original_is_subsequence_of_result(self, original, inserts):
        buf = RewriteBuffer(original)
        total = 0
        for offset, text in inserts:
            if offset <= len(original):
                buf.insert(offset, text)
                total += len(text)
        result = buf.apply()
        assert len(result) == len(original) + total
        # every original character survives, in order
        it = iter(result)
        assert all(ch in it for ch in original)

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    def test_insertions_at_same_offset_keep_order(self, a, b):
        buf = RewriteBuffer("0123456789")
        off = min(a, 10)
        buf.insert(off, "A")
        buf.insert(off, "B")
        assert "AB" in buf.apply()


# ---------------------------------------------------------------------------
# Cost model & misc runtime
# ---------------------------------------------------------------------------


class TestCostModelProperties:
    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=0, max_value=10**12))
    def test_memcpy_time_monotonic_in_bytes(self, a, b):
        cm = CostModel()
        lo, hi = sorted((a, b))
        assert cm.memcpy_time(lo) <= cm.memcpy_time(hi)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_memcpy_has_latency_floor(self, nbytes):
        cm = CostModel()
        assert cm.memcpy_time(nbytes) > cm.memcpy_latency_s


class TestLCGProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_deterministic(self, seed):
        a, b = LCG(seed), LCG(seed)
        assert [a.rand() for _ in range(5)] == [b.rand() for _ in range(5)]

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_nonnegative(self, seed):
        gen = LCG(seed)
        assert all(gen.rand() >= 0 for _ in range(10))


# ---------------------------------------------------------------------------
# Expression evaluation vs Python semantics
# ---------------------------------------------------------------------------


class TestInterpreterArithmeticProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=-999, max_value=999),
           st.integers(min_value=-999, max_value=999))
    def test_add_mul_match_python(self, a, b):
        from repro.runtime import run_simulation

        src = f'int main() {{ printf("%d %d", {a} + {b}, {a} * {b}); return 0; }}'
        assert run_simulation(src).output == f"{a + b} {a * b}"

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=-99, max_value=99),
           st.integers(min_value=1, max_value=99))
    def test_division_truncates_toward_zero(self, a, b):
        from repro.runtime import run_simulation

        src = (
            'int main() { printf("%d %d", '
            f"{a} / {b}, {a} % {b}); return 0; }}"
        )
        q = int(a / b)
        r = a - q * b
        assert run_simulation(src).output == f"{q} {r}"
