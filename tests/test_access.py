"""Tests for memory access classification (paper section IV-B)."""

from repro.analysis import AccessKind, collect_accesses, summarize
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source


def accesses_for(body, prelude="int a[8]; int b[8]; int x; int y;"):
    src = f"{prelude}\nvoid g(double *p) {{}}\nvoid gc(const double *p) {{}}\n" \
          f"int main() {{ {body} return 0; }}"
    tu = parse_source(src, "t.c")
    fn = tu.lookup_function("main")
    out = []
    for stmt in fn.body.stmts:
        out.extend(collect_accesses(stmt))
    return out


def kinds_of(body, name, **kw):
    joined = AccessKind.NONE
    for acc in accesses_for(body, **kw):
        if acc.name == name:
            joined = joined.join(acc.kind)
    return joined


class TestKindLattice:
    def test_join_identity(self):
        assert AccessKind.NONE.join(AccessKind.READ) is AccessKind.READ

    def test_join_read_write(self):
        assert AccessKind.READ.join(AccessKind.WRITE) is AccessKind.READWRITE

    def test_unknown_dominates(self):
        for k in AccessKind:
            assert AccessKind.UNKNOWN.join(k) is AccessKind.UNKNOWN

    def test_reads_writes_predicates(self):
        assert AccessKind.READ.reads and not AccessKind.READ.writes
        assert AccessKind.WRITE.writes and not AccessKind.WRITE.reads
        assert AccessKind.READWRITE.reads and AccessKind.READWRITE.writes
        assert AccessKind.UNKNOWN.reads and AccessKind.UNKNOWN.writes


class TestClassification:
    def test_plain_read(self):
        assert kinds_of("y = x;", "x") is AccessKind.READ

    def test_plain_write(self):
        assert kinds_of("x = 1;", "x") is AccessKind.WRITE

    def test_compound_assign_is_readwrite(self):
        assert kinds_of("x += 1;", "x") is AccessKind.READWRITE

    def test_increment_is_readwrite(self):
        assert kinds_of("x++;", "x") is AccessKind.READWRITE
        assert kinds_of("--x;", "x") is AccessKind.READWRITE

    def test_array_write_and_index_read(self):
        accs = accesses_for("a[x] = 1;")
        by_name = summarize(accs)
        assert by_name["a"] is AccessKind.WRITE
        assert by_name["x"] is AccessKind.READ

    def test_array_read(self):
        assert kinds_of("y = a[0];", "a") is AccessKind.READ

    def test_array_subscript_recorded(self):
        accs = [acc for acc in accesses_for("a[0] = 1;") if acc.name == "a"]
        assert accs[0].subscript is not None
        assert not accs[0].is_whole_variable

    def test_rhs_then_lhs(self):
        accs = [acc for acc in accesses_for("x = y;") if acc.name in ("x", "y")]
        assert [a.name for a in accs] == ["y", "x"]

    def test_address_of_is_unknown(self):
        assert kinds_of("int *p; p = &x;", "x") is AccessKind.UNKNOWN

    def test_ternary_both_arms(self):
        by_name = summarize(accesses_for("y = x ? a[0] : b[0];"))
        assert by_name["a"] is AccessKind.READ
        assert by_name["b"] is AccessKind.READ

    def test_decl_init_reads_rhs(self):
        by_name = summarize(accesses_for("int z = x + 1;"))
        assert by_name["x"] is AccessKind.READ
        assert by_name["z"] is AccessKind.WRITE

    def test_condition_reads(self):
        by_name = summarize(accesses_for("if (x > 0) { }"))
        assert by_name["x"] is AccessKind.READ

    def test_sizeof_operand_not_accessed(self):
        assert kinds_of("y = sizeof x;", "x") is AccessKind.NONE


class TestCallArguments:
    def test_scalar_arg_is_read(self):
        assert kinds_of("g((double *)0); y = abs(x);", "x") is AccessKind.READ

    def test_array_arg_unknown_before_resolution(self):
        accs = [a for a in accesses_for("double d[4]; g(d);") if a.name == "d"]
        assert accs[-1].kind is AccessKind.UNKNOWN
        assert accs[-1].via_call is not None

    def test_const_pointer_arg_is_read(self):
        accs = [a for a in accesses_for("double d[4]; gc(d);") if a.name == "d"]
        # argument type is double[4]; parameter is const double * -> READ
        reads = [a for a in accs if a.via_call is not None]
        assert reads and all(a.kind in (AccessKind.READ, AccessKind.UNKNOWN) for a in reads)

    def test_address_of_arg_via_call(self):
        src_accs = accesses_for("double z; g(&z);", prelude="int unused;")
        tagged = [a for a in src_accs if a.name == "z" and a.via_call is not None]
        assert tagged


class TestStatementScoping:
    def test_if_collects_only_condition(self):
        src = "int x; int y;\nint main() { if (x) { y = 1; } return 0; }"
        tu = parse_source(src, "t.c")
        fn = tu.lookup_function("main")
        if_stmt = next(fn.walk_instances(A.IfStmt))
        names = {a.name for a in collect_accesses(if_stmt)}
        assert names == {"x"}

    def test_for_collects_only_condition(self):
        src = "int n; int a[4];\nint main() { for (int i = 0; i < n; i++) a[i] = i; return 0; }"
        tu = parse_source(src, "t.c")
        fn = tu.lookup_function("main")
        for_stmt = next(fn.walk_instances(A.ForStmt))
        names = {a.name for a in collect_accesses(for_stmt)}
        assert names == {"i", "n"}

    def test_while_condition(self):
        src = "int n;\nint main() { while (n > 0) { n--; } return 0; }"
        tu = parse_source(src, "t.c")
        fn = tu.lookup_function("main")
        w = next(fn.walk_instances(A.WhileStmt))
        assert summarize(collect_accesses(w))["n"] is AccessKind.READ
