"""Tests for liveness analysis and alias disambiguation."""

import pytest

from repro.analysis import (
    InterproceduralAnalysis,
    LivenessAnalysis,
    analyze_function,
    escaping_variables,
    verify_disambiguation,
)
from repro.cfg import build_cfg
from repro.diagnostics import AnalysisError
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source


def liveness_for(src, name="main", live_at_exit=None):
    tu = parse_source(src, "t.c")
    fn = tu.lookup_function(name)
    cfg = build_cfg(fn)
    effects = InterproceduralAnalysis(tu)
    result = LivenessAnalysis(cfg, effects, live_at_exit=live_at_exit).run()
    return tu, fn, cfg, result


def node_of(cfg, pred):
    return [n for n in cfg.nodes if n.ast is not None and pred(n.ast)][0]


class TestLiveness:
    def test_variable_live_before_use(self):
        src = """
        int main() {
          int a = 1;
          int b = a + 2;
          return b;
        }
        """
        tu, fn, cfg, res = liveness_for(src)
        decl_a = node_of(cfg, lambda s: isinstance(s, A.DeclStmt)
                         and s.decls[0].name == "a")
        assert res.is_live_after(decl_a, "a")

    def test_dead_after_last_use(self):
        src = """
        int main() {
          int a = 1;
          int b = a + 2;
          a = 0;
          return b;
        }
        """
        tu, fn, cfg, res = liveness_for(src)
        # after the read `b = a + 2`, the next event is a kill: `a` dead
        decl_b = node_of(cfg, lambda s: isinstance(s, A.DeclStmt)
                         and s.decls[0].name == "b")
        assert not res.is_live_after(decl_b, "a")

    def test_loop_keeps_variable_live(self):
        src = """
        int main() {
          int acc = 0;
          for (int i = 0; i < 4; i++) {
            acc = acc + i;
          }
          return acc;
        }
        """
        tu, fn, cfg, res = liveness_for(src)
        body = node_of(cfg, lambda s: isinstance(s, A.ExprStmt))
        assert res.is_live_after(body, "acc")  # live around the back edge

    def test_branch_join_is_union(self):
        src = """
        int main() {
          int a = 1, b = 2, c = 3;
          if (c) {
            c = a;
          } else {
            c = b;
          }
          return c;
        }
        """
        tu, fn, cfg, res = liveness_for(src)
        pred = [n for n in cfg.nodes if isinstance(n.ast, A.IfStmt)][0]
        assert res.is_live_before(pred, "a")
        assert res.is_live_before(pred, "b")

    def test_array_element_write_does_not_kill(self):
        src = """
        int main() {
          int a[4];
          a[0] = 1;
          a[1] = 2;
          return a[0];
        }
        """
        tu, fn, cfg, res = liveness_for(src)
        first = node_of(cfg, lambda s: isinstance(s, A.ExprStmt))
        assert res.is_live_after(first, "a")

    def test_live_at_exit_propagates(self):
        src = "int g;\nint main() { g = 1; return 0; }"
        tu, fn, cfg, res = liveness_for(src, live_at_exit={"g"})
        assign = node_of(cfg, lambda s: isinstance(s, A.ExprStmt))
        assert res.is_live_after(assign, "g")

    def test_escaping_variables(self):
        src = "int g;\nvoid f(double *p, int n) { p[0] = g + n; }"
        tu = parse_source(src, "t.c")
        fn = tu.lookup_function("f")
        esc = escaping_variables(fn, tu)
        assert "g" in esc and "p" in esc and "n" not in esc


class TestAlias:
    def test_malloc_site_unambiguous(self):
        src = """
        int main() {
          double *p = (double *)malloc(64);
          p[0] = 1.0;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("main"), tu)
        assert result.unambiguous("p")

    def test_array_decay(self):
        src = """
        int main() {
          double buf[8];
          double *p = buf;
          p[0] = 1.0;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("main"), tu)
        (obj,) = result.of("p")
        assert obj.name == "buf"

    def test_two_targets_detected(self):
        src = """
        int main() {
          double a[8]; double b[8];
          double *p = a;
          p = b;
          p[0] = 1.0;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("main"), tu)
        assert not result.unambiguous("p")
        assert result.may_alias("p", "p")

    def test_conditional_assignment_unions(self):
        src = """
        int main() {
          double a[8]; double b[8];
          int c = 1;
          double *p = c ? a : b;
          p[0] = 1.0;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("main"), tu)
        assert len(result.of("p")) == 2

    def test_pointer_copy_propagates(self):
        src = """
        int main() {
          double a[8];
          double *p = a;
          double *q = p;
          q[0] = 1.0;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("main"), tu)
        assert result.may_alias("p", "q")

    def test_verify_disambiguation_raises_on_ambiguity(self):
        src = """
        int main() {
          double a[8]; double b[8];
          double *p = a;
          p = b;
          #pragma omp target
          for (int i = 0; i < 8; i++) p[i] = i;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        with pytest.raises(AnalysisError, match="disambiguate"):
            verify_disambiguation(tu.lookup_function("main"), tu, {"p"})

    def test_tool_rejects_ambiguous_kernel_pointer(self):
        from repro.core import transform_source

        src = """
        int main() {
          double a[8]; double b[8];
          double *p = a;
          p = b;
          #pragma omp target
          for (int i = 0; i < 8; i++) p[i] = i;
          return 0;
        }
        """
        with pytest.raises(AnalysisError):
            transform_source(src, "ambig.c")

    def test_param_pointers_distinct(self):
        src = "void f(double *p, double *q) { p[0] = q[0]; }"
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("f"), tu)
        assert not result.may_alias("p", "q")
        assert result.unambiguous("p") and result.unambiguous("q")

    def test_pointer_arithmetic_stays_in_object(self):
        src = """
        int main() {
          double a[8];
          double *p = a + 2;
          p[0] = 1.0;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        result = analyze_function(tu.lookup_function("main"), tu)
        (obj,) = result.of("p")
        assert obj.name == "a"
