"""Remote artifact tier: circuit breaker, retry/backoff client, the
server's /artifacts routes, tiered read-through/write-behind caching,
and the degraded-health surfaces."""

import asyncio
import threading

import pytest

import repro.pipeline.remote as remote_module
from repro.pipeline.cache import MISS, ORIGIN_REMOTE, ArtifactCache
from repro.pipeline.remote import (
    EVENT_ROWS,
    REMOTE_PUB_ROW,
    REMOTE_ROW,
    CircuitBreaker,
    RemoteStoreClient,
    RemoteStoreConfig,
    _jitter,
    remote_view,
)
from repro.pipeline.store import StorePassStats

#: A localhost port nothing listens on (reserved, never assigned).
DEAD_URL = "http://127.0.0.1:1"

#: Client tuned for tests: no real sleeps, instant cooldowns.
FAST = RemoteStoreConfig(
    timeout=0.5, retries=1, backoff=0.0, breaker_threshold=3,
    breaker_cooldown=0.05, publish_queue=4,
)


def _scheduler(**kw):
    from repro.service.scheduler import JobScheduler

    kw.setdefault("workers", 1)
    kw.setdefault("use_processes", False)
    return JobScheduler(**kw)


async def _request(host, port, method, path, payload=None):
    from repro.service.loadgen import LoadClient

    client = LoadClient(host, port, keep_alive=False)
    try:
        response = await client.request(method, path, payload)
    finally:
        await client.aclose()
    return response


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers_half_open(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=3, cooldown=10.0, clock=lambda: now[0]
        )
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()  # cooldown not elapsed

        now[0] = 10.0
        assert breaker.allow() is True  # exactly one half-open probe
        assert not breaker.allow()      # second probe refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.closes == 1
        assert breaker.allow()

    def test_half_open_failure_reopens_for_full_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=1, cooldown=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.opens == 2
        assert not breaker.allow()
        now[0] = 9.0
        assert not breaker.allow()  # new cooldown runs from the reopen

    def test_success_resets_consecutive_failure_count(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED


class TestRetryMachinery:
    def test_jitter_is_deterministic_and_bounded(self):
        values = [_jitter(f"key-{i}", a) for i in range(50) for a in range(3)]
        assert all(0.5 <= v < 1.0 for v in values)
        assert len(set(values)) > 100  # actually spreads
        assert _jitter("k", 0) == _jitter("k", 0)
        assert _jitter("k", 0) != _jitter("k", 1)

    def test_fetch_degrades_to_none_and_trips_breaker(self):
        sleeps = []
        client = RemoteStoreClient(
            DEAD_URL, config=FAST, sleep=sleeps.append,
            clock=lambda: 0.0,
        )
        try:
            for _ in range(FAST.breaker_threshold):
                assert client.fetch("parse-k") is None
            # Every attempt (1 + retries) hit the dead port.
            assert client.counters["error"] == 3 * (1 + FAST.retries)
            assert client.breaker.state == CircuitBreaker.OPEN
            assert client.counters["breaker_open"] == 1
            # While open: no network, counted as degraded.
            assert client.fetch("parse-k") is None
            assert client.counters["degraded"] == 1
            assert client.counters["error"] == 3 * (1 + FAST.retries)
            # One backoff sleep per failed first attempt.
            assert len(sleeps) == 3 * FAST.retries
        finally:
            client.close()

    def test_push_failure_returns_false_never_raises(self):
        client = RemoteStoreClient(
            DEAD_URL, config=FAST, sleep=lambda s: None
        )
        try:
            assert client.push("parse-k", b"payload") is False
            assert client.counters["put"] == 0
            assert client.counters["error"] > 0
        finally:
            client.close()

    def test_rejects_non_http_and_hostless_urls(self):
        with pytest.raises(ValueError):
            RemoteStoreClient("https://secure.example")
        with pytest.raises(ValueError):
            RemoteStoreClient("http://")

    def test_offer_sheds_oldest_when_queue_is_full(self, tmp_path):
        config = RemoteStoreConfig(retries=0, publish_queue=2)
        client = RemoteStoreClient(DEAD_URL, config=config)
        started = threading.Event()
        gate = threading.Event()
        pushed = []

        def slow_push(key, payload):
            started.set()
            gate.wait(timeout=5.0)
            pushed.append(key)
            return True

        client.push = slow_push
        paths = []
        for i in range(4):
            path = tmp_path / f"parse-k{i}.art"
            path.write_bytes(b"x")
            paths.append(path)
        try:
            client.offer("parse-k0", paths[0])
            assert started.wait(timeout=5.0)  # k0 in flight, queue empty
            client.offer("parse-k1", paths[1])
            client.offer("parse-k2", paths[2])
            client.offer("parse-k3", paths[3])  # overflows: k1 shed
            assert client.counters["publish_shed"] == 1
            gate.set()
            assert client.flush(timeout=5.0)
            assert pushed == ["parse-k0", "parse-k2", "parse-k3"]
        finally:
            client.close()


class TestRemoteView:
    def test_absent_rows_mean_no_remote_tier(self):
        assert remote_view({}) is None
        assert remote_view({"__store_gc__": StorePassStats()}) is None

    def test_field_mapping_matches_event_rows(self):
        view = remote_view({
            REMOTE_ROW: StorePassStats(1, 2, 3, 4, 5, 6),
            REMOTE_PUB_ROW: StorePassStats(7, 8, 9, 0, 0, 0),
        })
        assert view == {
            "hits": 1, "misses": 2, "puts": 3, "errors": 4,
            "breaker_opens": 5, "breaker_closes": 6,
            "publish_shed": 7, "publish_errors": 8, "degraded": 9,
        }
        # EVENT_ROWS indices and the view fields must stay in lockstep.
        assert EVENT_ROWS["hit"] == (REMOTE_ROW, 0)
        assert EVENT_ROWS["degraded"] == (REMOTE_PUB_ROW, 2)


def _spill_payload(tmp_path, value=(1, 2, 3)):
    """A valid compact spill container, via a real cache spill."""
    cache = ArtifactCache(disk_dir=tmp_path / "seed")
    cache.put("parse", "seed-key", list(value))
    (path,) = (tmp_path / "seed").glob("parse-*.art")
    return path.name[: -len(".art")], path.read_bytes()


class TestArtifactRoutes:
    def test_put_get_roundtrip_and_miss(self, tmp_path):
        key, payload = _spill_payload(tmp_path)

        async def run():
            from repro.service.server import JobServer

            server = JobServer(
                _scheduler(cache_dir=str(tmp_path / "node")), port=0
            )
            host, port = await server.start()
            try:
                response = await _request(
                    host, port, "GET", f"/artifacts/{key}"
                )
                assert response.status == 404

                response = await _request(
                    host, port, "PUT", f"/artifacts/{key}", payload
                )
                assert response.status == 201
                assert response.json()["stored"] is True

                response = await _request(
                    host, port, "GET", f"/artifacts/{key}"
                )
                assert response.status == 200
                assert response.body == payload

                response = await _request(
                    host, port, "GET", "/artifacts/stats"
                )
                assert response.status == 200
                census = response.json()
                assert census["files"] == 1
                assert census["by_pass"]["parse"]["files"] == 1
            finally:
                await server.aclose()

        asyncio.run(run())
        assert (tmp_path / "node" / f"{key}.art").exists()

    def test_rejects_bad_keys_and_bad_payloads(self, tmp_path):
        async def run():
            from repro.service.server import JobServer

            server = JobServer(
                _scheduler(cache_dir=str(tmp_path / "node")), port=0
            )
            host, port = await server.start()
            try:
                for bad in ("..%2Fevil", ".hidden", "a%2Fb"):
                    response = await _request(
                        host, port, "GET", f"/artifacts/{bad}"
                    )
                    assert response.status == 400, bad
                # Not a compact spill container: rejected, not stored.
                response = await _request(
                    host, port, "PUT", "/artifacts/parse-k", b"garbage"
                )
                assert response.status == 400
                response = await _request(
                    host, port, "POST", "/artifacts/parse-k"
                )
                assert response.status == 405
            finally:
                await server.aclose()

        asyncio.run(run())
        assert not list((tmp_path / "node").glob("*.art"))

    def test_artifact_routes_need_a_cache_dir(self):
        async def run():
            from repro.service.server import JobServer

            server = JobServer(_scheduler(), port=0)
            host, port = await server.start()
            try:
                response = await _request(
                    host, port, "GET", "/artifacts/parse-k"
                )
                assert response.status == 503
            finally:
                await server.aclose()

        asyncio.run(run())


class TestTieredCache:
    def _serve(self, cache_dir):
        from repro.service.server import JobServer

        return JobServer(_scheduler(cache_dir=str(cache_dir)), port=0)

    def test_read_through_lands_local_spill(self, tmp_path):
        async def run():
            server = self._serve(tmp_path / "node")
            host, port = await server.start()
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    None, self._exercise_read_through, tmp_path, host, port
                )
            finally:
                await server.aclose()

        asyncio.run(run())

    def _exercise_read_through(self, tmp_path, host, port):
        publisher = ArtifactCache(disk_dir=tmp_path / "a")
        client_a = RemoteStoreClient(f"http://{host}:{port}", config=FAST)
        publisher.remote = client_a
        publisher.put("parse", "shared", [4, 5, 6])
        assert client_a.flush(timeout=5.0)
        assert client_a.counters["put"] == 1
        client_a.close()

        reader = ArtifactCache(disk_dir=tmp_path / "b")
        client_b = RemoteStoreClient(f"http://{host}:{port}", config=FAST)
        reader.remote = client_b
        try:
            value, origin = reader.lookup("parse", "shared")
            assert value == [4, 5, 6]
            assert origin == ORIGIN_REMOTE
            assert client_b.counters["hit"] == 1
            assert list((tmp_path / "b").glob("parse-*.art"))
            # Second lookup is local: the payload landed as a spill.
            fresh = ArtifactCache(disk_dir=tmp_path / "b")
            assert fresh.get("parse", "shared") == [4, 5, 6]
        finally:
            client_b.close()

    def test_corrupt_remote_payload_quarantines_as_miss(self, tmp_path):
        async def run():
            server = self._serve(tmp_path / "node")
            host, port = await server.start()
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    None, self._exercise_corruption, tmp_path, host, port
                )
            finally:
                await server.aclose()

        asyncio.run(run())

    def _exercise_corruption(self, tmp_path, host, port):
        publisher = ArtifactCache(disk_dir=tmp_path / "a")
        client_a = RemoteStoreClient(f"http://{host}:{port}", config=FAST)
        publisher.remote = client_a
        publisher.put("parse", "shared", [4, 5, 6])
        assert client_a.flush(timeout=5.0)
        client_a.close()

        reader = ArtifactCache(disk_dir=tmp_path / "b")
        client_b = RemoteStoreClient(f"http://{host}:{port}", config=FAST)
        reader.remote = client_b
        remote_module.payload_fault_hook = (
            lambda key, payload: payload[: len(payload) // 2]
        )
        try:
            assert reader.get("parse", "shared") is MISS
            assert reader.stats["parse"].corrupt_spills == 1
            assert list((tmp_path / "b").glob("*.art.bad"))
        finally:
            remote_module.payload_fault_hook = None
            client_b.close()

    def test_down_store_degrades_without_failing(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        client = RemoteStoreClient(
            DEAD_URL, config=FAST, sleep=lambda s: None
        )
        cache.remote = client
        try:
            assert cache.get("parse", "k") is MISS
            cache.put("parse", "k", [1])
            assert cache.get("parse", "k") == [1]  # local tiers still work
            client.flush(timeout=5.0)
            health = client.health()
            assert health["error"] > 0 or health["publish_error"] > 0
        finally:
            client.close()


class TestDegradedHealth:
    def test_scheduler_reports_open_breaker_and_healthz_degrades(
        self, tmp_path
    ):
        from repro.service.core import worker_init
        from repro.service.server import JobServer

        src = (
            "int a[8];\nint main() {\n"
            "  #pragma omp target teams distribute parallel for\n"
            "  for (int i = 0; i < 8; i++) a[i] = i;\n"
            "  return 0;\n}\n"
        )

        async def run():
            server = JobServer(
                _scheduler(cache_dir=str(tmp_path), store_url=DEAD_URL),
                port=0,
            )
            host, port = await server.start()
            try:
                response = await _request(
                    host, port, "POST", "/run",
                    {"kind": "transform", "source": src, "filename": "a.c"},
                )
                assert response.status == 200
                assert response.json()["state"] == "done"
                health = await _request(host, port, "GET", "/healthz")
                stats = await _request(host, port, "GET", "/stats")
                return health.status, health.json(), stats.json()
            finally:
                await server.aclose()

        try:
            status, health, stats = asyncio.run(run())
        finally:
            worker_init(None)  # reset the thread runtime's remote tier
        # Degraded is a *warning* state: still 200, never 503.
        assert status == 200
        assert health["ok"] is True
        assert health["status"] == "degraded"
        assert any("circuit breaker" in r for r in health["reasons"])
        assert stats["remote"]["breaker_opens"] >= 1
        assert stats["remote"]["errors"] >= 1
        assert any(
            "circuit breaker" in r for r in stats["degraded_reasons"]
        )
