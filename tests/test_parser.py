"""Unit tests for the mini-C parser and its light semantic analysis."""

import pytest

from repro.diagnostics import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source
from repro.frontend.parser import fold_integer_constant


def parse(src):
    return parse_source(src, "test.c")


def first_fn(src, name="main"):
    tu = parse(src)
    fn = tu.lookup_function(name)
    assert fn is not None, f"function {name} not found"
    return fn


def find(node, cls):
    return list(node.walk_instances(cls))


class TestDeclarations:
    def test_global_scalar(self):
        tu = parse("int x;")
        (var,) = tu.global_vars()
        assert var.name == "x"
        assert str(var.qual_type) == "int"
        assert var.is_global

    def test_global_with_init(self):
        tu = parse("double pi = 3.14;")
        (var,) = tu.global_vars()
        assert isinstance(var.init, A.FloatingLiteral)

    def test_multiple_declarators(self):
        tu = parse("int a, b = 2, c;")
        assert [v.name for v in tu.global_vars()] == ["a", "b", "c"]

    def test_array_type(self):
        tu = parse("float a[10];")
        (var,) = tu.global_vars()
        assert var.qual_type.is_array
        assert var.qual_type.size == 40

    def test_2d_array(self):
        tu = parse("double m[4][8];")
        (var,) = tu.global_vars()
        inner, dims = var.qual_type.type.flattened()
        assert dims == (4, 8)
        assert var.qual_type.size == 4 * 8 * 8

    def test_array_size_constant_folded(self):
        tu = parse("#define N 8\nint a[N * 2];")
        (var,) = tu.global_vars()
        assert var.qual_type.type.length == 16

    def test_pointer_type(self):
        tu = parse("int *p;")
        (var,) = tu.global_vars()
        assert var.qual_type.is_pointer

    def test_pointer_to_const(self):
        tu = parse("const double *p;")
        (var,) = tu.global_vars()
        assert var.qual_type.points_to_const()

    def test_static_storage(self):
        tu = parse("static int x;")
        assert tu.global_vars()[0].storage == "static"

    def test_init_list(self):
        tu = parse("int a[3] = {1, 2, 3};")
        (var,) = tu.global_vars()
        assert isinstance(var.init, A.InitListExpr)
        assert len(var.init.inits) == 3

    def test_empty_init_list(self):
        tu = parse("int a[4] = {};")
        assert isinstance(tu.global_vars()[0].init, A.InitListExpr)


class TestFunctions:
    def test_definition_and_prototype(self):
        tu = parse("int f(int a);\nint f(int a) { return a; }")
        fns = tu.functions()
        assert len(fns) == 2
        assert tu.lookup_function("f").is_definition

    def test_params(self):
        fn = first_fn("void g(int n, double *x, const float *y) {}", "g")
        assert [p.name for p in fn.params] == ["n", "x", "y"]
        assert fn.params[1].qual_type.is_pointer
        assert fn.params[2].qual_type.points_to_const()

    def test_array_param_decays_to_pointer(self):
        fn = first_fn("void g(double a[]) {}", "g")
        assert fn.params[0].qual_type.is_pointer

    def test_sized_array_param_decays(self):
        fn = first_fn("void g(double a[16]) {}", "g")
        assert fn.params[0].qual_type.is_pointer

    def test_2d_array_param(self):
        fn = first_fn("void g(double a[][8]) {}", "g")
        qt = fn.params[0].qual_type
        assert qt.is_pointer
        assert qt.pointee().is_array

    def test_void_params(self):
        fn = first_fn("int f(void) { return 1; }", "f")
        assert fn.params == []

    def test_forward_reference_resolved(self):
        tu = parse("int main() { return helper(); }\nint helper() { return 3; }")
        call = find(tu, A.CallExpr)[0]
        ref = call.callee
        assert isinstance(ref, A.DeclRefExpr)
        assert isinstance(ref.decl, A.FunctionDecl)
        assert ref.decl.is_definition

    def test_recursion_resolves(self):
        fn = first_fn("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }", "fib")
        calls = find(fn, A.CallExpr)
        assert len(calls) == 2

    def test_builtin_call_typed(self):
        fn = first_fn("double f(double x) { return sqrt(x); }", "f")
        call = find(fn, A.CallExpr)[0]
        assert str(call.qual_type) == "double"


class TestStatements:
    def test_if_else(self):
        fn = first_fn("int main() { int x = 1; if (x) x = 2; else x = 3; return x; }")
        (if_stmt,) = find(fn, A.IfStmt)
        assert if_stmt.else_branch is not None

    def test_for_loop_parts(self):
        fn = first_fn("int main() { for (int i = 0; i < 4; i++) {} return 0; }")
        (loop,) = find(fn, A.ForStmt)
        assert isinstance(loop.init, A.DeclStmt)
        assert isinstance(loop.cond, A.BinaryOperator)
        assert isinstance(loop.inc, A.UnaryOperator)

    def test_for_loop_empty_parts(self):
        fn = first_fn("int main() { for (;;) break; return 0; }")
        (loop,) = find(fn, A.ForStmt)
        assert loop.init is None and loop.cond is None and loop.inc is None

    def test_while(self):
        fn = first_fn("int main() { int i = 0; while (i < 3) i++; return i; }")
        assert len(find(fn, A.WhileStmt)) == 1

    def test_do_while(self):
        fn = first_fn("int main() { int i = 0; do { i++; } while (i < 3); return i; }")
        assert len(find(fn, A.DoStmt)) == 1

    def test_switch(self):
        src = """
        int main() {
          int x = 2, y = 0;
          switch (x) {
            case 1: y = 10; break;
            case 2: y = 20; break;
            default: y = -1;
          }
          return y;
        }
        """
        fn = first_fn(src)
        assert len(find(fn, A.SwitchStmt)) == 1
        assert len(find(fn, A.CaseStmt)) == 2
        assert len(find(fn, A.DefaultStmt)) == 1

    def test_break_continue(self):
        fn = first_fn("int main() { for (;;) { if (1) continue; break; } return 0; }")
        assert len(find(fn, A.BreakStmt)) == 1
        assert len(find(fn, A.ContinueStmt)) == 1

    def test_goto_rejected(self):
        with pytest.raises(ParseError):
            parse("int main() { goto done; done: return 0; }")

    def test_null_stmt(self):
        fn = first_fn("int main() { ; return 0; }")
        assert len(find(fn, A.NullStmt)) == 1


class TestExpressions:
    def test_precedence_mul_over_add(self):
        fn = first_fn("int main() { return 1 + 2 * 3; }")
        ret = find(fn, A.ReturnStmt)[0]
        top = ret.value
        assert isinstance(top, A.BinaryOperator) and top.op == "+"
        assert isinstance(top.rhs, A.BinaryOperator) and top.rhs.op == "*"

    def test_assignment_right_assoc(self):
        fn = first_fn("int main() { int a, b; a = b = 1; return a; }")
        assigns = [
            n for n in find(fn, A.BinaryOperator) if n.op == "="
        ]
        outer = assigns[0]
        assert isinstance(outer.rhs, A.BinaryOperator)
        assert outer.rhs.op == "="

    def test_compound_assign(self):
        fn = first_fn("int main() { int a = 0; a += 3; return a; }")
        assert any(isinstance(n, A.CompoundAssignOperator) for n in fn.walk())

    def test_ternary(self):
        fn = first_fn("int main() { int a = 1; return a ? 2 : 3; }")
        assert len(find(fn, A.ConditionalOperator)) == 1

    def test_subscript_typing(self):
        fn = first_fn("int main() { double a[4]; return (int)a[0]; }")
        sub = find(fn, A.ArraySubscriptExpr)[0]
        assert str(sub.qual_type) == "double"

    def test_nested_subscript(self):
        fn = first_fn("int main() { double m[2][3]; m[1][2] = 0.0; return 0; }")
        subs = find(fn, A.ArraySubscriptExpr)
        outer = subs[0]
        ref = outer.base_decl_ref()
        assert ref is not None and ref.name == "m"
        assert len(outer.index_exprs()) == 2

    def test_member_access(self):
        src = """
        struct Point { double x; double y; };
        int main() { struct Point p; p.x = 1.0; return 0; }
        """
        fn = first_fn(src)
        mem = find(fn, A.MemberExpr)[0]
        assert mem.member == "x"
        assert str(mem.qual_type) == "double"

    def test_arrow_access(self):
        src = """
        struct Node { int v; };
        int f(struct Node *n) { return n->v; }
        """
        fn = first_fn(src, "f")
        mem = find(fn, A.MemberExpr)[0]
        assert mem.is_arrow
        assert str(mem.qual_type) == "int"

    def test_cast(self):
        fn = first_fn("int main() { double d = 1.5; return (int)d; }")
        assert len(find(fn, A.CStyleCastExpr)) == 1

    def test_malloc_cast_pattern(self):
        fn = first_fn(
            "int main() { double *p = (double *)malloc(8 * 4); free(p); return 0; }"
        )
        cast = find(fn, A.CStyleCastExpr)[0]
        assert cast.target_type.is_pointer

    def test_sizeof_type(self):
        fn = first_fn("int main() { return sizeof(double); }")
        sz = find(fn, A.SizeOfExpr)[0]
        assert fold_integer_constant(sz) == 8

    def test_sizeof_expr(self):
        fn = first_fn("int main() { int x; return sizeof x; }")
        sz = find(fn, A.SizeOfExpr)[0]
        assert fold_integer_constant(sz) == 4

    def test_address_of(self):
        fn = first_fn("void g(int *p) {}\nint main() { int x; g(&x); return 0; }")
        amp = [n for n in find(fn, A.UnaryOperator) if n.op == "&"]
        assert len(amp) == 1
        assert amp[0].qual_type.is_pointer

    def test_string_concatenation(self):
        fn = first_fn('int main() { printf("a" "b"); return 0; }')
        lit = find(fn, A.StringLiteral)[0]
        assert lit.value == "ab"

    def test_comma_expression(self):
        fn = first_fn("int main() { int a, b; for (a = 0, b = 1; a < 2; a++) {} return b; }")
        commas = [n for n in find(fn, A.BinaryOperator) if n.op == ","]
        assert len(commas) == 1


class TestTypedefsStructsEnums:
    def test_typedef(self):
        tu = parse("typedef double real;\nreal x;")
        assert str(tu.global_vars()[0].qual_type) == "double"

    def test_typedef_struct(self):
        tu = parse("typedef struct { float x; float y; } Vec2;\nVec2 v;")
        var = tu.global_vars()[0]
        assert var.qual_type.is_aggregate
        assert var.qual_type.size == 8

    def test_named_struct_reference(self):
        tu = parse("struct S { int a; };\nstruct S s;")
        var = tu.global_vars()[0]
        assert var.qual_type.size == 4

    def test_struct_with_array_field(self):
        tu = parse("struct Grid { double cells[16]; int n; };\nstruct Grid g;")
        assert tu.global_vars()[0].qual_type.size == 16 * 8 + 4

    def test_enum_constants(self):
        tu = parse("enum Color { RED, GREEN = 5, BLUE };\nint x = BLUE;")
        var = tu.global_vars()[0]
        assert fold_integer_constant(var.init) == 6


class TestConstantFolding:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2", 3),
            ("10 / 3", 3),
            ("7 % 4", 3),
            ("1 << 4", 16),
            ("(2 + 3) * 4", 20),
            ("-5", -5),
            ("!0", 1),
            ("1 ? 7 : 9", 7),
            ("0 ? 7 : 9", 9),
            ("3 > 2", 1),
        ],
    )
    def test_fold(self, expr, expected):
        tu = parse(f"int a[{expr}];" if expected > 0 else f"int x = {expr};")
        var = tu.global_vars()[0]
        if expected > 0:
            assert var.qual_type.type.length == expected
        else:
            assert fold_integer_constant(var.init) == expected

    def test_division_by_zero_not_folded(self):
        with pytest.raises(ParseError):
            parse("int a[1 / 0];")


class TestSourceRanges:
    def test_ranges_nest(self):
        src = "int main() {\n  int x = 1;\n  return x;\n}\n"
        tu = parse(src)
        fn = tu.lookup_function("main")
        body = fn.body
        assert fn.range.contains(body.range)
        for stmt in body.stmts:
            assert body.range.contains(stmt.range)

    def test_parents_set(self):
        tu = parse("int main() { return 1 + 2; }")
        lit = find(tu, A.IntegerLiteral)[0]
        assert isinstance(lit.parent, A.BinaryOperator)
        assert A.enclosing_function(lit).name == "main"

    def test_enclosing_loops(self):
        src = """
        int main() {
          for (int i = 0; i < 2; i++)
            for (int j = 0; j < 2; j++) {
              int x = 0;
            }
          return 0;
        }
        """
        tu = parse(src)
        decl = [d for d in find(tu, A.VarDecl) if d.name == "x"][0]
        loops = A.enclosing_loops(decl)
        assert len(loops) == 2
