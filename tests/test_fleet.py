"""Fleet routing (``ompdart serve --peer``) and the load generator's
failure taxonomy: least-loaded peer choice, loop-free forwarding,
poison passthrough, local fallback, and per-category gate budgets."""

import asyncio
import json

import pytest

from repro.pipeline.remote import CircuitBreaker
from repro.service.fleet import FORWARDED_HEADER, PeerRouter
from repro.service.loadgen import _failure_category, gate_load

SRC = """
int a[16];
int main() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 16; i++) a[i] = i;
  return 0;
}
"""


def _scheduler(**kw):
    from repro.service.scheduler import JobScheduler

    kw.setdefault("workers", 1)
    kw.setdefault("use_processes", False)
    return JobScheduler(**kw)


def _server(port=0, **kw):
    from repro.service.server import JobServer

    return JobServer(_scheduler(), port=port, **kw)


async def _request(host, port, method, path, payload=None, headers=None):
    from repro.service.loadgen import LoadClient

    client = LoadClient(host, port, keep_alive=False, headers=headers)
    try:
        response = await client.request(method, path, payload)
    finally:
        await client.aclose()
    return response


class TestPeerSelection:
    def test_requires_at_least_one_peer(self):
        with pytest.raises(ValueError):
            PeerRouter([])
        with pytest.raises(ValueError):
            PeerRouter(["ftp://nope"])

    def test_picks_least_loaded_healthy_closed_peer(self):
        router = PeerRouter(["http://a:1", "http://b:1", "http://c:1"])
        a, b, c = router.peers
        a.healthy = True
        a.queue_depth = 5
        b.healthy = True
        b.queue_depth = 1
        b.inflight = 1
        c.healthy = True
        c.queue_depth = 0
        c.inflight = 6
        assert router._pick(set()) is b  # 2 beats 5 and 6
        assert router._pick({b.url}) is a

    def test_unhealthy_and_open_breaker_peers_are_excluded(self):
        router = PeerRouter(["http://a:1", "http://b:1"])
        a, b = router.peers
        a.healthy = False
        b.healthy = True
        for _ in range(3):
            b.breaker.record_failure()
        assert b.breaker.state == CircuitBreaker.OPEN
        assert router._pick(set()) is None

    def test_degraded_reasons_name_open_breakers_and_dead_fleet(self):
        router = PeerRouter(["http://a:1", "http://b:1"])
        _a, b = router.peers
        for _ in range(3):
            b.breaker.record_failure()
        reasons = router.degraded_reasons()
        assert any("http://b:1" in r for r in reasons)
        assert any("no healthy peers" in r for r in reasons)


class TestForwarding:
    def test_forwards_to_peer_and_counts(self):
        async def run():
            peer_server = _server()
            peer_host, peer_port = await peer_server.start()
            router = PeerRouter(
                [f"http://{peer_host}:{peer_port}"], probe_interval=30.0
            )
            try:
                await router.start()
                assert router.peers[0].healthy
                body = json.dumps(
                    {"kind": "ping", "token": "fleet"}
                ).encode()
                routed = await router.forward(body)
                assert routed is not None
                status, payload = routed
                assert status == 200
                assert json.loads(payload)["state"] == "done"
                stats = router.stats()
                assert stats["forwarded"] == 1
                assert stats["rerouted"] == 0
                assert stats["local_fallbacks"] == 0
                return peer_server.scheduler.stats()
            finally:
                await router.aclose()
                await peer_server.aclose()

        peer_stats = asyncio.run(run())
        assert peer_stats["executed"] == 1

    def test_http_errors_pass_through_verbatim_without_reroute(self):
        async def run():
            peer_server = _server()
            peer_host, peer_port = await peer_server.start()
            router = PeerRouter(
                [f"http://{peer_host}:{peer_port}"], probe_interval=30.0
            )
            try:
                await router.start()
                routed = await router.forward(
                    json.dumps({"kind": "nope"}).encode()
                )
                assert routed is not None
                status, payload = routed
                # The peer *answered*: its verdict travels back
                # untouched, and the job is not re-run anywhere.
                assert status == 400
                assert "unknown job kind" in json.loads(payload)["error"]
                assert router.stats()["forwarded"] == 1
                assert router.stats()["local_fallbacks"] == 0
            finally:
                await router.aclose()
                await peer_server.aclose()

        asyncio.run(run())

    def test_dead_peer_falls_back_to_local(self):
        async def run():
            router = PeerRouter(
                ["http://127.0.0.1:1"], probe_interval=30.0,
                probe_timeout=0.5,
            )
            try:
                await router.start()
                assert not router.peers[0].healthy
                routed = await router.forward(b'{"kind":"ping"}')
                assert routed is None
                assert router.stats()["local_fallbacks"] == 1
                assert router.degraded_reasons()
            finally:
                await router.aclose()

        asyncio.run(run())

    def test_transport_death_mid_forward_reroutes_once(self):
        async def run():
            live = _server()
            live_host, live_port = await live.start()
            dying = _server()
            dying_host, dying_port = await dying.start()
            router = PeerRouter(
                [
                    f"http://{dying_host}:{dying_port}",
                    f"http://{live_host}:{live_port}",
                ],
                probe_interval=30.0,
            )
            try:
                await router.start()
                # Make the dying peer the preferred target, then kill
                # it so the forward dies at the transport level.
                router.peers[0].queue_depth = 0
                router.peers[1].queue_depth = 5
                await dying.kill()
                routed = await router.forward(
                    json.dumps({"kind": "ping", "token": "x"}).encode()
                )
                assert routed is not None
                status, payload = routed
                assert status == 200
                assert json.loads(payload)["state"] == "done"
                stats = router.stats()
                assert stats["forwarded"] == 1
                assert stats["rerouted"] == 1
                assert not router.peers[0].healthy
                return live.scheduler.stats()
            finally:
                await router.aclose()
                await live.aclose()
                await dying.aclose()

        live_stats = asyncio.run(run())
        assert live_stats["executed"] == 1


class TestServedRouting:
    def test_ring_of_two_terminates_after_one_hop(self, unused_tcp_port=None):
        """A↔B peer rings must not bounce jobs forever: the forwarded
        marker makes the second hop execute locally."""

        async def run():
            from repro.service.server import JobServer

            server_b = JobServer(_scheduler(), port=0)
            host_b, port_b = await server_b.start()
            router_a = PeerRouter(
                [f"http://{host_b}:{port_b}"], probe_interval=30.0
            )
            server_a = JobServer(_scheduler(), port=0, router=router_a)
            host_a, port_a = await server_a.start()
            # B routes back to A: a real (misconfigured) ring.
            router_b = PeerRouter(
                [f"http://{host_a}:{port_a}"], probe_interval=30.0
            )
            server_b.router = router_b
            await router_b.start()
            try:
                response = await _request(
                    host_a, port_a, "POST", "/run",
                    {"kind": "transform", "source": SRC, "filename": "a.c"},
                )
                assert response.status == 200
                assert response.json()["state"] == "done"
                stats_a = (
                    await _request(host_a, port_a, "GET", "/stats")
                ).json()
                stats_b = (
                    await _request(host_b, port_b, "GET", "/stats")
                ).json()
                return stats_a, stats_b
            finally:
                await server_a.aclose()
                await server_b.aclose()

        stats_a, stats_b = asyncio.run(run())
        # A forwarded to B; B executed locally (no second hop).
        assert stats_a["fleet"]["forwarded"] == 1
        assert stats_b["executed"] == 1
        assert stats_a["executed"] == 0
        assert stats_b["fleet"]["forwarded"] == 0

    def test_forwarded_marker_is_honored_directly(self):
        async def run():
            peer = _server()
            peer_host, peer_port = await peer.start()
            router = PeerRouter(
                [f"http://{peer_host}:{peer_port}"], probe_interval=30.0
            )
            front = _server(router=router)
            host, port = await front.start()
            try:
                # A pre-marked request must execute on the front node.
                response = await _request(
                    host, port, "POST", "/run",
                    {"kind": "ping", "token": "marked"},
                    headers={FORWARDED_HEADER: "1"},
                )
                assert response.status == 200
                assert front.scheduler.stats()["executed"] == 1
                assert peer.scheduler.stats()["executed"] == 0
            finally:
                await front.aclose()
                await peer.aclose()

        asyncio.run(run())


class TestLoadFailureTaxonomy:
    def test_failure_category_mapping(self):
        assert _failure_category(TimeoutError()) == "timeouts"
        assert _failure_category(asyncio.TimeoutError()) == "timeouts"
        assert (
            _failure_category(ConnectionResetError())
            == "connection_errors"
        )
        assert _failure_category(OSError()) == "connection_errors"
        assert (
            _failure_category(
                asyncio.IncompleteReadError(b"", expected=10)
            )
            == "connection_errors"
        )
        assert _failure_category(ValueError("bad json")) == "other_errors"

    def _payload(self, **mode):
        base = {
            "requests": 100, "failed": 0, "connection_errors": 0,
            "timeouts": 0, "http_errors": 0, "other_errors": 0,
            "p99_s": 0.01, "throughput_rps": 1000.0,
        }
        base.update(mode)
        return {"schema": "ompdart-load-perf/1", "modes": {"keepalive": base}}

    def test_any_failure_fails_without_budgets(self):
        payload = self._payload(failed=2, connection_errors=2)
        assert gate_load(payload)
        assert not gate_load(self._payload())

    def test_budgeted_category_tolerates_up_to_budget(self):
        payload = self._payload(failed=2, connection_errors=2)
        assert not gate_load(payload, max_connection_errors=2)
        problems = gate_load(payload, max_connection_errors=1)
        assert any("connection errors" in p for p in problems)

    def test_unbudgeted_residual_still_fails(self):
        payload = self._payload(
            failed=3, connection_errors=2, http_errors=1
        )
        problems = gate_load(payload, max_connection_errors=5)
        assert any("failed request" in p for p in problems)
        assert not gate_load(
            payload, max_connection_errors=5, max_http_errors=1
        )

    def test_old_artifacts_without_categories_still_gate(self):
        payload = {
            "schema": "ompdart-load-perf/1",
            "modes": {"close": {"requests": 10, "failed": 1, "p99_s": 0.1}},
        }
        assert gate_load(payload)
        # A budget cannot excuse failures an old artifact can't attribute.
        assert gate_load(payload, max_connection_errors=5)
