"""Tests for the refcounted device data environment (OpenMP 5.2 rules)."""

import numpy as np
import pytest

from repro.frontend.ctypes_ import DOUBLE
from repro.runtime import DeviceDataEnvironment, DeviceRuntimeError, Profiler
from repro.runtime.values import ArrayObject, Cell


@pytest.fixture()
def env():
    return DeviceDataEnvironment(Profiler())


@pytest.fixture()
def arr():
    obj = ArrayObject("a", 16, DOUBLE)
    obj.data[:] = np.arange(16)
    return obj


class TestRefcounting:
    def test_enter_allocates_and_copies_to(self, env, arr):
        env.map_enter(arr, "to")
        assert env.present(arr)
        assert env.refcount(arr) == 1
        assert env.profiler.h2d_calls == 1
        assert env.profiler.h2d_bytes == arr.byte_size

    def test_alloc_does_not_copy(self, env, arr):
        env.map_enter(arr, "alloc")
        assert env.present(arr)
        assert env.profiler.h2d_calls == 0

    def test_nested_enter_only_bumps_refcount(self, env, arr):
        env.map_enter(arr, "to")
        env.map_enter(arr, "tofrom")
        assert env.refcount(arr) == 2
        assert env.profiler.h2d_calls == 1  # second enter: no copy

    def test_from_copies_only_at_zero(self, env, arr):
        env.map_enter(arr, "tofrom")
        env.map_enter(arr, "tofrom")
        env.device_storage(arr)[:] = 99.0
        env.map_exit(arr, "from")
        # refcount 2 -> 1: no copy yet (the Listing 3 pitfall)
        assert env.profiler.d2h_calls == 0
        assert arr.data[0] != 99.0
        env.map_exit(arr, "from")
        assert env.profiler.d2h_calls == 1
        assert arr.data[0] == 99.0
        assert not env.present(arr)

    def test_release_never_copies(self, env, arr):
        env.map_enter(arr, "to")
        env.device_storage(arr)[:] = 5.0
        env.map_exit(arr, "release")
        assert env.profiler.d2h_calls == 0
        assert not env.present(arr)

    def test_delete_drops_immediately(self, env, arr):
        env.map_enter(arr, "to")
        env.map_enter(arr, "to")
        env.map_exit(arr, "delete")
        assert not env.present(arr)

    def test_exit_of_absent_object_is_noop(self, env, arr):
        env.map_exit(arr, "from")
        assert env.profiler.d2h_calls == 0

    def test_refcount_never_negative(self, env, arr):
        env.map_enter(arr, "to")
        env.map_exit(arr, "from")
        env.map_exit(arr, "from")
        assert env.refcount(arr) == 0


class TestUpdates:
    def test_update_from_copies_unconditionally(self, env, arr):
        env.map_enter(arr, "tofrom")
        env.map_enter(arr, "tofrom")
        env.device_storage(arr)[:] = 7.0
        env.update_from(arr)
        assert env.profiler.d2h_calls == 1
        assert arr.data[0] == 7.0
        assert env.present(arr)  # update does not unmap

    def test_update_to_refreshes_device(self, env, arr):
        env.map_enter(arr, "to")
        arr.data[:] = 3.0
        env.update_to(arr)
        assert env.profiler.h2d_calls == 2
        assert env.device_storage(arr)[0] == 3.0

    def test_update_on_absent_object_is_noop(self, env, arr):
        env.update_to(arr)
        env.update_from(arr)
        assert env.profiler.h2d_calls == 0
        assert env.profiler.d2h_calls == 0


class TestStaleness:
    def test_device_allocation_is_not_host_copy(self, env, arr):
        # alloc leaves device contents zeroed, not mirroring the host —
        # this is what exposes missing map(to:) in verification.
        env.map_enter(arr, "alloc")
        assert float(env.device_storage(arr)[5]) == 0.0
        assert arr.data[5] == 5.0

    def test_host_writes_do_not_leak_to_device(self, env, arr):
        env.map_enter(arr, "to")
        arr.data[:] = -1.0
        assert float(env.device_storage(arr)[3]) == 3.0


class TestScalars:
    def test_scalar_cell_mapping(self, env):
        cell = Cell("x", 42, 4)
        env.map_enter(cell, "to")
        assert env.profiler.h2d_bytes == 4
        dev = env.device_storage(cell)
        dev.value = 99
        env.map_exit(cell, "from")
        assert cell.value == 99
        assert env.profiler.d2h_bytes == 4


class TestErrors:
    def test_invalid_map_type(self, env, arr):
        with pytest.raises(DeviceRuntimeError):
            env.map_enter(arr, "sideways")

    def test_unmapped_access_raises(self, env, arr):
        with pytest.raises(DeviceRuntimeError):
            env.device_storage(arr)
