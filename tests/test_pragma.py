"""Unit tests for OpenMP pragma parsing (directives + clauses)."""

import pytest

from repro.diagnostics import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source
from repro.frontend.pragma import split_clauses


def parse_directive(pragma, body="{ }", extra=""):
    src = f"int a[10]; int n;\n{extra}\nint main() {{\n{pragma}\n{body}\nreturn 0;\n}}"
    tu = parse_source(src, "t.c")
    fn = tu.lookup_function("main")
    directives = list(fn.walk_instances(A.OMPExecutableDirective))
    assert directives, "no directive parsed"
    return directives[0]


class TestDirectiveRecognition:
    # Every row of paper Table I.
    TABLE_I = [
        ("#pragma omp target", A.OMPTargetDirective),
        ("#pragma omp target parallel", A.OMPTargetParallelDirective),
        ("#pragma omp target parallel for", A.OMPTargetParallelForDirective),
        ("#pragma omp target parallel for simd", A.OMPTargetParallelForSimdDirective),
        ("#pragma omp target parallel loop", A.OMPTargetParallelGenericLoopDirective),
        ("#pragma omp target simd", A.OMPTargetSimdDirective),
        ("#pragma omp target teams", A.OMPTargetTeamsDirective),
        ("#pragma omp target teams distribute", A.OMPTargetTeamsDistributeDirective),
        ("#pragma omp target teams distribute parallel for",
         A.OMPTargetTeamsDistributeParallelForDirective),
        ("#pragma omp target teams distribute parallel for simd",
         A.OMPTargetTeamsDistributeParallelForSimdDirective),
        ("#pragma omp target teams distribute simd",
         A.OMPTargetTeamsDistributeSimdDirective),
        ("#pragma omp target teams loop", A.OMPTargetTeamsGenericLoopDirective),
    ]

    @pytest.mark.parametrize("pragma,cls", TABLE_I)
    def test_table1_kernel_directives(self, pragma, cls):
        body = "for (int i = 0; i < 10; i++) a[i] = i;"
        d = parse_directive(pragma, body)
        assert type(d) is cls
        assert d.is_offload_kernel
        assert A.is_offload_kernel(d)

    def test_table1_is_complete(self):
        assert len(A.OFFLOAD_KERNEL_DIRECTIVES) == 12
        for pragma, cls in self.TABLE_I:
            spelled = "omp " + pragma.removeprefix("#pragma omp ")
            assert A.OFFLOAD_KERNEL_DIRECTIVES[cls] == spelled

    def test_target_data(self):
        d = parse_directive("#pragma omp target data map(tofrom: a)")
        assert type(d) is A.OMPTargetDataDirective
        assert not d.is_offload_kernel
        assert d.associated_stmt is not None

    def test_target_update_standalone(self):
        d = parse_directive("#pragma omp target update from(a)", body="a[0] = 1;")
        assert type(d) is A.OMPTargetUpdateDirective
        assert d.associated_stmt is None

    def test_target_enter_exit_data(self):
        d = parse_directive("#pragma omp target enter data map(to: a)", body="a[0] = 1;")
        assert type(d) is A.OMPTargetEnterDataDirective
        d = parse_directive("#pragma omp target exit data map(from: a)", body="a[0] = 1;")
        assert type(d) is A.OMPTargetExitDataDirective

    def test_host_parallel_for(self):
        d = parse_directive("#pragma omp parallel for",
                            body="for (int i = 0; i < 10; i++) a[i] = i;")
        assert type(d) is A.OMPHostDirective
        assert not d.is_offload_kernel

    def test_unknown_directive_raises(self):
        with pytest.raises(ParseError):
            parse_directive("#pragma omp banana")


class TestMapClauses:
    def test_default_map_type_is_tofrom(self):
        d = parse_directive("#pragma omp target data map(a)")
        (clause,) = d.map_clauses()
        assert clause.map_type == "tofrom"

    @pytest.mark.parametrize("mt", ["to", "from", "tofrom", "alloc", "release", "delete"])
    def test_map_types(self, mt):
        d = parse_directive(f"#pragma omp target data map({mt}: a)")
        assert d.map_clauses()[0].map_type == mt

    def test_map_multiple_items(self):
        d = parse_directive("#pragma omp target data map(to: a, n)")
        assert d.map_clauses()[0].var_names() == ["a", "n"]

    def test_multiple_map_clauses(self):
        d = parse_directive("#pragma omp target data map(to: a) map(from: n)")
        assert len(d.map_clauses()) == 2

    def test_array_section(self):
        d = parse_directive("#pragma omp target data map(to: a[0:10])")
        item = d.map_clauses()[0].items[0]
        assert not item.is_whole_variable
        lo, ln = item.sections[0]
        assert isinstance(lo, A.IntegerLiteral) and lo.value == 0
        assert isinstance(ln, A.IntegerLiteral) and ln.value == 10

    def test_array_section_with_exprs(self):
        d = parse_directive("#pragma omp target data map(to: a[n:n*2])")
        item = d.map_clauses()[0].items[0]
        lo, ln = item.sections[0]
        assert isinstance(lo, A.DeclRefExpr)
        assert isinstance(ln, A.BinaryOperator)

    def test_2d_section(self):
        d = parse_directive("#pragma omp target data map(to: a[0:4][0:5])")
        item = d.map_clauses()[0].items[0]
        assert len(item.sections) == 2

    def test_always_modifier(self):
        d = parse_directive("#pragma omp target data map(always, tofrom: a)")
        assert d.map_clauses()[0].map_type == "tofrom"


class TestOtherClauses:
    def test_firstprivate(self):
        body = "for (int i = 0; i < 10; i++) a[i] = n;"
        d = parse_directive("#pragma omp target parallel for firstprivate(n)", body)
        (fp,) = d.clauses_of(A.OMPFirstprivateClause)
        assert fp.var_names() == ["n"]

    def test_update_to_from(self):
        d = parse_directive("#pragma omp target update to(a) from(n)", body="a[0] = 1;")
        (to,) = d.clauses_of(A.OMPToClause)
        (frm,) = d.clauses_of(A.OMPFromClause)
        assert to.var_names() == ["a"]
        assert frm.var_names() == ["n"]

    def test_reduction(self):
        body = "for (int i = 0; i < 10; i++) n += a[i];"
        d = parse_directive(
            "#pragma omp target teams distribute parallel for reduction(+: n)", body
        )
        (red,) = d.clauses_of(A.OMPReductionClause)
        assert red.operator == "+"
        assert red.var_names() == ["n"]

    def test_num_teams_expr(self):
        body = "for (int i = 0; i < 10; i++) a[i] = i;"
        d = parse_directive("#pragma omp target teams distribute num_teams(4*2)", body)
        (c,) = [cl for cl in d.clauses if cl.kind == "num_teams"]
        assert isinstance(c, A.OMPExprClause)

    def test_nowait(self):
        body = "for (int i = 0; i < 10; i++) a[i] = i;"
        d = parse_directive("#pragma omp target parallel for nowait", body)
        assert any(c.kind == "nowait" for c in d.clauses)

    def test_schedule(self):
        body = "for (int i = 0; i < 10; i++) a[i] = i;"
        d = parse_directive("#pragma omp parallel for schedule(static, 4)", body)
        (c,) = [cl for cl in d.clauses if cl.kind == "schedule"]
        assert "static" in c.argument

    def test_collapse(self):
        body = "for (int i = 0; i < 4; i++) for (int j = 0; j < 4; j++) a[i] = j;"
        d = parse_directive("#pragma omp target teams distribute collapse(2)", body)
        assert any(c.kind == "collapse" for c in d.clauses)

    def test_unknown_clause_raises(self):
        with pytest.raises(ParseError):
            parse_directive("#pragma omp target frobnicate(a)")


class TestSplitClauses:
    def test_empty(self):
        assert split_clauses("") == []

    def test_single_no_arg(self):
        assert split_clauses("nowait") == [("nowait", None)]

    def test_args_with_nested_parens(self):
        out = split_clauses("if(f(1,2)) map(to: a)")
        assert out == [("if", "f(1,2)"), ("map", "to: a")]

    def test_comma_separated_clauses(self):
        out = split_clauses("firstprivate(x), nowait")
        assert out == [("firstprivate", "x"), ("nowait", None)]

    def test_unbalanced_raises(self):
        with pytest.raises(ParseError):
            split_clauses("map(to: a")


class TestPragmaIntegration:
    def test_nested_directive_structure(self):
        src = """
        int a[10];
        int main() {
          #pragma omp target data map(tofrom: a)
          {
            #pragma omp target teams distribute parallel for
            for (int i = 0; i < 10; i++) a[i] = i;
          }
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        data = list(tu.walk_instances(A.OMPTargetDataDirective))
        kernels = [n for n in tu.walk() if A.is_offload_kernel(n)]
        assert len(data) == 1 and len(kernels) == 1
        # the kernel is nested inside the data region's associated stmt
        assert any(k is n for n in data[0].walk() for k in kernels)

    def test_directive_range_covers_associated_stmt(self):
        src = """
        int a[10];
        int main() {
          #pragma omp target
          for (int i = 0; i < 10; i++) a[i] = i;
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        (kernel,) = [n for n in tu.walk() if A.is_offload_kernel(n)]
        assert kernel.range.contains(kernel.associated_stmt.range)

    def test_pragma_text_preserved(self):
        d = parse_directive("#pragma omp target data map(to: a)")
        assert "map(to: a)" in d.pragma_text
