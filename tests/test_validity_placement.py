"""Tests for the validity dataflow (IV-D) and update placement (IV-D/E)."""

from repro.analysis import (
    Direction,
    InterproceduralAnalysis,
    PlacementAnalysis,
    PlacementKind,
    UpdatePosition,
    ValidityAnalysis,
    VarState,
    variables_of_interest,
)
from repro.cfg import ASTCFG
from repro.core.region import compute_region
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source


def setup(src, fn_name="main"):
    tu = parse_source(src, "t.c")
    fn = tu.lookup_function(fn_name)
    astcfg = ASTCFG(fn)
    effects = InterproceduralAnalysis(tu)
    tracked = variables_of_interest(astcfg, effects)
    result = ValidityAnalysis(astcfg, effects, tracked).run()
    region = compute_region(astcfg)
    placer = PlacementAnalysis(astcfg, result, region.begin_offset, region.end_offset)
    return astcfg, tracked, result, placer, region


class TestVarState:
    def test_meet_is_conjunction(self):
        a = VarState(True, False)
        b = VarState(True, True)
        assert a.meet(b) == VarState(True, False)

    def test_write_invalidates_other_space(self):
        from repro.analysis.validity import Space

        s = VarState(True, True).after_write(Space.DEVICE)
        assert not s.valid_host and s.valid_dev

    def test_entry_state(self):
        from repro.analysis.validity import ENTRY

        assert ENTRY.valid_host and not ENTRY.valid_dev


class TestTrackedVariables:
    def test_kernel_locals_excluded(self):
        src = """
        int a[8];
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) { int t = i * 2; a[i] = t; }
          return 0;
        }
        """
        astcfg, tracked, *_ = setup(src)
        assert tracked == {"a"}

    def test_host_only_vars_excluded(self):
        src = """
        int a[8]; int h;
        int main() {
          h = 3;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          return h;
        }
        """
        _, tracked, *_ = setup(src)
        assert "h" not in tracked

    def test_scalar_used_in_kernel_tracked(self):
        src = """
        int a[8]; int n;
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = n;
          return 0;
        }
        """
        _, tracked, *_ = setup(src)
        assert tracked == {"a", "n"}


class TestRAWDetection:
    def test_kernel_read_of_host_data(self):
        src = """
        int a[8];
        int main() {
          a[0] = 1;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] += 1;
          return 0;
        }
        """
        _, _, result, *_ = setup(src)
        dirs = {(n.var, n.direction) for n in result.needs}
        assert ("a", Direction.HTOD) in dirs

    def test_host_read_of_device_data(self):
        src = """
        int a[8]; int out;
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          out = a[3];
          return out;
        }
        """
        _, _, result, *_ = setup(src)
        dirs = {(n.var, n.direction) for n in result.needs}
        assert ("a", Direction.DTOH) in dirs

    def test_war_waw_need_no_transfer(self):
        # Host writes then device overwrites: anti/output deps only.
        src = """
        int a[8];
        int main() {
          a[0] = 1;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          return 0;
        }
        """
        _, _, result, *_ = setup(src)
        assert all(n.direction is not Direction.HTOD for n in result.needs)

    def test_device_to_device_reuse_no_transfer(self):
        # Listing 2: two kernels, nothing host-side in between.
        src = """
        int a[8];
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] *= 2;
          return 0;
        }
        """
        _, _, result, *_ = setup(src)
        # the second kernel reads device-valid data: no HtoD need at it
        htod = [n for n in result.needs if n.direction is Direction.HTOD]
        assert htod == []

    def test_host_write_between_kernels_needs_update(self):
        src = """
        int a[8];
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          a[0] = 99;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] *= 2;
          return 0;
        }
        """
        _, _, result, *_ = setup(src)
        dirs = {(n.var, n.direction) for n in result.needs}
        # host writes a[0] (elementwise => host copy only partially valid;
        # conservative whole-array model: host stale => DtoH first), then
        # the second kernel needs the host write => HtoD.
        assert ("a", Direction.HTOD) in dirs

    def test_facts_aggregate_kernel_usage(self):
        src = """
        int a[8]; int n;
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = n;
          return 0;
        }
        """
        _, _, result, *_ = setup(src)
        assert result.facts["a"].device_writes
        assert not result.facts["a"].device_reads
        assert result.facts["n"].device_reads
        assert not result.facts["n"].device_writes

    def test_loop_carried_state_via_meet(self):
        # Listing 1: kernel in a loop; host copy invalid after iteration 1,
        # so the meet at the loop head drops host validity.
        src = """
        int a[8];
        int main() {
          for (int t = 0; t < 4; t++) {
            #pragma omp target
            for (int j = 0; j < 8; j++) a[j] += j;
          }
          return 0;
        }
        """
        astcfg, _, result, *_ = setup(src)
        outer = [lp for lp in astcfg.cfg.loops
                 if lp.head is not None and not lp.head.offloaded]
        head = outer[0].head
        state = result.state_in[head]["a"]
        assert not state.valid_host  # after one iteration host copy is stale


class TestPlacementDecisions:
    def test_map_to_promotion(self):
        src = """
        int a[8];
        int main() {
          a[0] = 1;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] += 1;
          return 0;
        }
        """
        astcfg, _, result, placer, _ = setup(src)
        places = placer.place_all()
        htod = [p for p in places if p.direction is Direction.HTOD]
        assert htod and htod[0].kind is PlacementKind.REGION_ENTRY

    def test_after_region_read_becomes_map_from(self):
        src = """
        int a[8]; int out;
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          out = a[3];
          return out;
        }
        """
        _, _, result, placer, _ = setup(src)
        places = placer.place_all()
        dtoh = [p for p in places if p.direction is Direction.DTOH]
        assert dtoh and dtoh[0].kind is PlacementKind.REGION_EXIT

    def test_in_region_host_read_is_update(self):
        src = """
        int a[8]; int out;
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          out = a[3];
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] *= 2;
          return out;
        }
        """
        _, _, result, placer, _ = setup(src)
        dtoh = [p for p in placer.place_all() if p.direction is Direction.DTOH]
        assert dtoh and dtoh[0].kind is PlacementKind.UPDATE
        assert dtoh[0].position is UpdatePosition.BEFORE

    def test_listing6_hoists_out_of_both_host_loops(self):
        src = """
        double ps[128]; double out[17];
        int main() {
          #pragma omp target teams distribute parallel for
          for (int t = 0; t < 128; t++) ps[t] = t;
          for (int j = 1; j <= 16; j++) {
            double sum = 0.0;
            for (int k = 0; k < 8; k++) sum += ps[k * 16 + j - 1];
            out[j] = sum;
          }
          #pragma omp target teams distribute parallel for
          for (int t = 1; t <= 16; t++) out[t] *= 2.0;
          return 0;
        }
        """
        _, _, result, placer, _ = setup(src)
        ps_updates = [
            p for p in placer.place_all()
            if p.var == "ps" and p.kind is PlacementKind.UPDATE
        ]
        assert len(ps_updates) == 1
        placement = ps_updates[0]
        assert len(placement.hoisted_out_of) == 2
        assert isinstance(placement.anchor, A.ForStmt)
        # anchor must be the outer j loop (the one with lower offset)
        assert placement.anchor.begin_offset == min(
            lp.begin_offset for lp in placement.hoisted_out_of
        )

    def test_loop_carried_update_stays_inside(self):
        # Host writes the array every outer iteration -> the HtoD update
        # cannot be hoisted out of the outer loop.
        src = """
        int a[8]; int seed;
        int main() {
          for (int t = 0; t < 4; t++) {
            a[0] = t;
            #pragma omp target
            for (int j = 0; j < 8; j++) a[j] += 1;
          }
          return 0;
        }
        """
        _, _, result, placer, _ = setup(src)
        htod = [p for p in placer.place_all() if p.direction is Direction.HTOD]
        assert htod
        p = htod[0]
        assert p.kind is PlacementKind.UPDATE
        assert p.hoisted_out_of == ()
        assert isinstance(p.anchor, A.OMPExecutableDirective)

    def test_kernel_anchoring(self):
        # Needs inside kernels anchor at the kernel directive.
        src = """
        int a[8];
        int main() {
          a[0] = 1;
          for (int t = 0; t < 4; t++) {
            a[1] = t;
            #pragma omp target
            for (int j = 0; j < 8; j++) a[j] += 1;
          }
          return 0;
        }
        """
        _, _, result, placer, _ = setup(src)
        htod = [p for p in placer.place_all() if p.direction is Direction.HTOD]
        for p in htod:
            if p.kind is PlacementKind.UPDATE:
                assert isinstance(p.anchor, A.OMPExecutableDirective)

    def test_do_while_conditional_body_end(self):
        src = """
        int flag; int a[8];
        int main() {
          do {
            #pragma omp target map(tofrom: flag)
            for (int i = 0; i < 8; i++) { a[i] += 1; flag = a[i] > 5; }
          } while (flag == 0);
          return 0;
        }
        """
        tu = parse_source(src, "t.c")
        fn = tu.lookup_function("main")
        astcfg = ASTCFG(fn)
        effects = InterproceduralAnalysis(tu)
        tracked = variables_of_interest(astcfg, effects)
        result = ValidityAnalysis(astcfg, effects, tracked).run()
        region = compute_region(astcfg)
        placer = PlacementAnalysis(
            astcfg, result, region.begin_offset, region.end_offset
        )
        flag_updates = [
            p for p in placer.place_all()
            if p.var == "flag" and p.direction is Direction.DTOH
        ]
        assert flag_updates
        assert flag_updates[0].position is UpdatePosition.BODY_END
        assert isinstance(flag_updates[0].anchor, A.DoStmt)


class TestAlgorithm1Position:
    def test_array_access_need_inside_host_loop(self):
        # The paper's Listing 6 shape: a kernel inside a host loop
        # whose per-iteration access pattern admits a hoisted update.
        src = """
        int a[8][8];
        int main() {
          for (int i = 0; i < 8; i++) {
            #pragma omp target teams distribute parallel for
            for (int j = 0; j < 8; j++) a[i][j] = a[i][j] + 1;
          }
          return 0;
        }
        """
        astcfg, _, _, placer, _ = setup(src)
        positions = [
            placer.algorithm1_position(need)
            for need in placer.result.needs
            if need.access is not None and need.access.subscript is not None
        ]
        assert positions, "expected at least one array-access need"
        for pos in positions:
            assert pos is None or isinstance(pos, A.Node)

    def test_need_without_subscript_returns_none(self):
        src = """
        int a[4];
        int main() {
          a[0] = 1;
          #pragma omp target
          for (int i = 0; i < 4; i++) a[i] += 1;
          return a[0];
        }
        """
        _, _, _, placer, _ = setup(src)
        for need in placer.result.needs:
            if need.access is None or need.access.subscript is None:
                assert placer.algorithm1_position(need) is None
