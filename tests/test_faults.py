"""Fault tolerance: deterministic fault plans, the supervised pool's
crash/retry/poison/cancel machinery, crash-safe store recovery, the
corrupt-spill quarantine, and the chaos harness's zero-divergence
contract."""

import asyncio
import os
import struct
import time

import pytest

from repro.pipeline.cache import MISS, ArtifactCache
from repro.pipeline.store import _SLOT, SharedArtifactStore
from repro.service.core import PingJobSpec, TransformJobSpec
from repro.service.faults import (
    CORRUPT_SPILL,
    KILL_WORKER,
    WEDGE,
    FaultPlan,
    FaultRule,
    parse_fault_plan,
)
from repro.service.supervisor import (
    JobCancelled,
    PoisonJobError,
    PoolExhausted,
    SupervisedPool,
)

SRC = """
int a[32];
int main() {
  a[0] = 1;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; i++) a[i] = a[i] + 1;
  return a[0];
}
"""

#: Result fields that legitimately vary run to run.
_VARYING = ("elapsed_seconds", "timings", "cache_events", "cache_origins")


def _scrub(payload):
    if isinstance(payload, dict):
        return {
            k: _scrub(v) for k, v in payload.items() if k not in _VARYING
        }
    if isinstance(payload, list):
        return [_scrub(v) for v in payload]
    return payload


def _pool(workers=1, **kw):
    try:
        return SupervisedPool(workers, **kw)
    except Exception:
        pytest.skip("process workers unavailable on this host")


def _dead_pid():
    """A pid guaranteed dead: fork a child that exits, reap it."""
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    return pid


class TestFaultPlan:
    def test_parse_plan(self):
        plan = parse_fault_plan(
            "kill-worker:p=0.05, corrupt-spill:p=0.02", seed=7
        )
        assert plan.seed == 7
        assert plan.rule(KILL_WORKER).probability == 0.05
        assert plan.rule(CORRUPT_SPILL).probability == 0.02
        assert plan.rule(WEDGE) is None

    def test_parse_always_and_seconds(self):
        plan = parse_fault_plan("wedge:p=1:always:s=5")
        rule = plan.rule(WEDGE)
        assert rule.always is True
        assert rule.seconds == 5.0

    def test_parse_rejects_garbage(self):
        for bad in (
            "explode:p=1",        # unknown kind
            "kill-worker",        # missing probability
            "kill-worker:p=2",    # out of [0, 1]
            "kill-worker:p=x",    # not a float
            "kill-worker:p=1:bogus=3",
            "",                   # empty plan
        ):
            with pytest.raises(ValueError):
                parse_fault_plan(bad)

    def test_decisions_are_deterministic_and_seeded(self):
        plan = FaultPlan(seed=1, rules=(FaultRule(KILL_WORKER, 0.5),))
        keys = [f"job-{i}" for i in range(200)]
        first = [plan.should_fire(KILL_WORKER, k) for k in keys]
        second = [plan.should_fire(KILL_WORKER, k) for k in keys]
        assert first == second
        assert any(first) and not all(first)  # p=0.5 actually splits
        other = FaultPlan(seed=2, rules=(FaultRule(KILL_WORKER, 0.5),))
        assert first != [other.should_fire(KILL_WORKER, k) for k in keys]

    def test_retries_survive_unless_always(self):
        transient = FaultPlan(rules=(FaultRule(KILL_WORKER, 1.0),))
        assert transient.should_fire(KILL_WORKER, "k", attempt=0)
        assert not transient.should_fire(KILL_WORKER, "k", attempt=1)
        poison = FaultPlan(
            rules=(FaultRule(KILL_WORKER, 1.0, always=True),)
        )
        assert poison.should_fire(KILL_WORKER, "k", attempt=3)


class TestSupervisedPool:
    def test_killed_worker_respawns_and_job_retries(self):
        pool = _pool(
            fault_plan=parse_fault_plan("kill-worker:p=1"),
            job_retries=1,
            retry_backoff=0.01,
        )
        try:
            result = pool.submit_spec(
                PingJobSpec(token="killed")
            ).future.result(30)
            assert result["pong"] is True
            stats = pool.stats()
            assert stats["crashes"] == 1
            assert stats["retries"] == 1
            assert stats["restarts"] == 1
            assert stats["alive"] == 1  # respawned, still serving
        finally:
            pool.shutdown()

    def test_double_killer_is_quarantined_as_poison(self):
        pool = _pool(
            fault_plan=parse_fault_plan("kill-worker:p=1:always"),
            job_retries=1,
            retry_backoff=0.01,
        )
        try:
            with pytest.raises(PoisonJobError, match="quarantined"):
                pool.submit_spec(
                    PingJobSpec(token="poison")
                ).future.result(30)
            assert pool.stats()["poisoned"] == 1
            # The pool survives its poison job: the worker respawns
            # and the restart budget is nowhere near spent.
            deadline = time.monotonic() + 10
            while pool.stats()["alive"] < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.stats()["alive"] == 1
            assert not pool.exhausted
        finally:
            pool.shutdown()

    def test_cooperative_cancel_interrupts_sleeping_worker(self):
        pool = _pool()
        try:
            job = pool.submit_spec(PingJobSpec(token="slow", sleep_s=30))
            time.sleep(0.3)  # let the worker start sleeping
            start = time.monotonic()
            job.cancel(2.0)
            with pytest.raises(JobCancelled):
                job.future.result(10)
            assert time.monotonic() - start < 2.0  # SIGINT, not grace
            stats = pool.stats()
            assert stats["cancelled"] == 1
            assert stats["cancel_kills"] == 0  # worker survived
            assert stats["alive"] == 1
        finally:
            pool.shutdown()

    def test_wedged_worker_is_killed_after_grace(self):
        pool = _pool(
            fault_plan=parse_fault_plan("wedge:p=1:s=60"),
            cancel_grace=0.3,
        )
        try:
            job = pool.submit_spec(PingJobSpec(token="wedged"))
            time.sleep(0.3)
            job.cancel(0.3)
            start = time.monotonic()
            with pytest.raises(JobCancelled):
                job.future.result(15)
            assert time.monotonic() - start < 10.0  # not the 60s wedge
            assert pool.stats()["cancel_kills"] == 1
        finally:
            pool.shutdown()

    def test_restart_budget_exhaustion_fails_fast(self):
        pool = _pool(
            fault_plan=parse_fault_plan("kill-worker:p=1:always"),
            job_retries=0,
            max_restarts=0,
        )
        try:
            with pytest.raises((PoisonJobError, PoolExhausted)):
                pool.submit_spec(PingJobSpec(token="boom")).future.result(30)
            deadline = time.monotonic() + 10
            while not pool.exhausted and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.exhausted
            with pytest.raises(PoolExhausted):
                pool.submit_spec(PingJobSpec(token="next"))
        finally:
            pool.shutdown()


class TestSchedulerFaults:
    def test_kill_recovery_is_bit_identical(self, tmp_path):
        """A transform whose worker dies mid-job retries to the same
        bytes a fault-free thread run produces."""
        from repro.service.scheduler import JobScheduler

        spec = TransformJobSpec(source=SRC, filename="a.c")

        async def run():
            async with JobScheduler(
                workers=1,
                use_processes=True,
                cache_dir=str(tmp_path / "faulted"),
                fault_plan=parse_fault_plan("kill-worker:p=1"),
                retry_backoff=0.01,
            ) as sched:
                if sched.executor_kind != "supervised":
                    pytest.skip("process workers unavailable")
                faulted = await sched.run(spec)
                supervisor = sched.stats()["supervisor"]
            async with JobScheduler(
                workers=1, use_processes=False
            ) as clean_sched:
                clean = await clean_sched.run(spec)
            return faulted, clean, supervisor

        faulted, clean, supervisor = asyncio.run(run())
        assert supervisor["crashes"] == 1
        assert _scrub(faulted) == _scrub(clean)

    def test_poison_job_fails_with_quarantine_error(self):
        from repro.service.scheduler import JobScheduler

        async def run():
            async with JobScheduler(
                workers=1,
                use_processes=True,
                fault_plan=parse_fault_plan("kill-worker:p=1:always"),
                job_retries=1,
                retry_backoff=0.01,
            ) as sched:
                if sched.executor_kind != "supervised":
                    pytest.skip("process workers unavailable")
                job = await sched.submit(PingJobSpec(token="poison"))
                with pytest.raises(Exception):
                    await asyncio.shield(job.future)
                assert job.state == "failed"
                assert job.error.startswith("poison:")
                assert sched.stats()["poisoned"] == 1

        asyncio.run(run())

    def test_timeout_hard_cancels_on_supervised_runtime(self):
        from repro.service.scheduler import JobScheduler

        async def run():
            async with JobScheduler(
                workers=1,
                use_processes=True,
                job_timeout=0.3,
                cancel_grace=0.3,
            ) as sched:
                if sched.executor_kind != "supervised":
                    pytest.skip("process workers unavailable")
                job = await sched.submit(
                    PingJobSpec(token="timeout", sleep_s=30)
                )
                with pytest.raises(Exception):
                    await asyncio.shield(job.future)
                assert job.state == "cancelled"
                assert "timed out" in job.error
                assert sched.stats()["timed_out"] == 1
                assert sched.stats()["cancelled"] == 1

        asyncio.run(run())

    def test_retry_after_default_and_ceiling(self):
        from repro.service.scheduler import JobScheduler

        sched = JobScheduler(
            workers=1,
            use_processes=False,
            retry_after_default=5,
            retry_after_max=7,
        )
        try:
            assert sched._retry_after() == 5  # no samples yet
            sched._run_seconds, sched._run_samples = 100.0, 1
            assert sched._retry_after() == 7  # clamped to the ceiling
            sched._run_seconds, sched._run_samples = 3.0, 1
            assert sched._retry_after() == 3
        finally:
            sched._executor.shutdown(wait=False)


class TestServerFaultRoutes:
    @staticmethod
    async def _request(host, port, method, path, payload=None):
        from repro.service.loadgen import LoadClient

        client = LoadClient(host, port, keep_alive=False)
        try:
            response = await client.request(method, path, payload)
        finally:
            await client.aclose()
        return response.status, response.json()

    def test_delete_cancels_running_job_within_grace(self):
        from repro.service.scheduler import JobScheduler
        from repro.service.server import JobServer

        async def run():
            sched = JobScheduler(
                workers=1, use_processes=True, cancel_grace=1.0
            )
            if sched.executor_kind != "supervised":
                await sched.aclose()
                pytest.skip("process workers unavailable")
            server = JobServer(sched, port=0)
            host, port = await server.start()
            try:
                status, body = await self._request(
                    host, port, "POST", "/jobs",
                    {"kind": "ping", "token": "del", "sleep_s": 30},
                )
                assert status == 202
                key = body["job"]
                await asyncio.sleep(0.3)  # job is executing now
                start = time.monotonic()
                status, body = await self._request(
                    host, port, "DELETE", f"/jobs/{key}"
                )
                elapsed = time.monotonic() - start
                assert status == 200
                assert body["state"] == "cancelled"
                assert elapsed < 4.0  # grace + bounded settle, not 30s
                # Second DELETE: already settled.
                status, _ = await self._request(
                    host, port, "DELETE", f"/jobs/{key}"
                )
                assert status == 409
                status, _ = await self._request(
                    host, port, "DELETE", "/jobs/unknown"
                )
                assert status == 404
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_run_returns_cancelled_envelope_to_waiters(self):
        from repro.service.scheduler import JobScheduler
        from repro.service.server import JobServer

        async def run():
            sched = JobScheduler(
                workers=1, use_processes=True, cancel_grace=1.0
            )
            if sched.executor_kind != "supervised":
                await sched.aclose()
                pytest.skip("process workers unavailable")
            server = JobServer(sched, port=0)
            host, port = await server.start()
            try:
                spec = {"kind": "ping", "token": "waiter", "sleep_s": 30}
                waiter = asyncio.create_task(
                    self._request(host, port, "POST", "/run", spec)
                )
                await asyncio.sleep(0.4)
                key = PingJobSpec(token="waiter", sleep_s=30).key()
                status, _ = await self._request(
                    host, port, "DELETE", f"/jobs/{key}"
                )
                assert status == 200
                status, body = await waiter
                # Cancellation is an outcome, not a server error: the
                # coalesced waiter gets the settled envelope.
                assert status == 200
                assert body["state"] == "cancelled"
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_exhausted_pool_answers_503(self):
        from repro.service.scheduler import JobScheduler
        from repro.service.server import JobServer

        async def run():
            sched = JobScheduler(
                workers=1,
                use_processes=True,
                fault_plan=parse_fault_plan("kill-worker:p=1:always"),
                job_retries=0,
                max_worker_restarts=0,
            )
            if sched.executor_kind != "supervised":
                await sched.aclose()
                pytest.skip("process workers unavailable")
            server = JobServer(sched, port=0)
            host, port = await server.start()
            try:
                status, body = await self._request(
                    host, port, "POST", "/run",
                    {"kind": "ping", "token": "first"},
                )
                assert status in (500, 503)  # poison or raced exhaustion
                deadline = time.monotonic() + 10
                while (
                    not sched._executor.exhausted
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.05)
                status, body = await self._request(
                    host, port, "POST", "/run",
                    {"kind": "ping", "token": "second"},
                )
                assert status == 503
                assert "restart budget" in body["error"]
                # The HTTP front itself is still healthy.
                status, _ = await self._request(host, port, "GET", "/healthz")
                assert status == 200
            finally:
                await server.aclose()

        asyncio.run(run())


class TestStoreCrashSafety:
    @pytest.fixture
    def store(self, tmp_path):
        store = SharedArtifactStore.create(tmp_path)
        if store is None:
            pytest.skip("shared memory unavailable on this host")
        yield store
        store.close()

    def test_stale_lock_from_dead_holder_is_rotated(self, store):
        """Regression: a lockfile flocked by a leaked descriptor and
        stamped with a dead pid must not wedge the store forever."""
        import fcntl

        fd = os.open(store._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            dead = _dead_pid()
            os.ftruncate(fd, 0)
            os.pwrite(fd, f"{dead}\n".encode(), 0)
            store.lock_timeout = 0.2
            start = time.monotonic()
            store.publish("parse", "k1", 10)  # must not hang
            assert time.monotonic() - start < 5.0
            assert store.lock_rotations == 1
            assert store.lookup("parse", "k1") == (True, False)
        finally:
            os.close(fd)

    def test_two_contenders_rotate_a_dead_lock_exactly_once(
        self, store, tmp_path
    ):
        """Race: two attached handles both time out on the same dead
        holder's lock.  Exactly one may rotate the lockfile — a double
        rotation would let both win and tear the index."""
        import fcntl
        import threading

        fd = os.open(store._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        handles = []
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            dead = _dead_pid()
            os.ftruncate(fd, 0)
            os.pwrite(fd, f"{dead}\n".encode(), 0)
            for _ in range(2):
                handle = SharedArtifactStore.attach(tmp_path, store.name)
                assert handle is not None
                handle.lock_timeout = 0.2
                handles.append(handle)
            barrier = threading.Barrier(2)
            errors = []

            def contend(handle, key):
                try:
                    barrier.wait(timeout=5)
                    handle.publish("parse", key, 10)
                except Exception as exc:  # noqa: BLE001 - report to main
                    errors.append(exc)

            threads = [
                threading.Thread(target=contend, args=(handle, f"k{i}"))
                for i, handle in enumerate(handles)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            rotations = sum(handle.lock_rotations for handle in handles)
            assert rotations == 1
            # Both publishes landed: nobody's write was torn away.
            assert store.lookup("parse", "k0") == (True, False)
            assert store.lookup("parse", "k1") == (True, False)
        finally:
            os.close(fd)
            for handle in handles:
                handle.close()

    def test_lock_held_by_live_process_raises_bounded(self, store):
        import fcntl

        fd = os.open(store._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            # Stamp a live pid (our own): rotation must NOT kick in.
            os.pwrite(fd, f"{os.getpid()}\n".encode(), 0)
            store.lock_timeout = 0.2
            with pytest.raises(OSError, match="held past"):
                store._acquire_lock()
            assert store.lock_timeouts == 1
            assert store.lock_rotations == 0
            # Fail-soft callers shrug it off.
            store.publish("parse", "k1", 10)
            assert store.health()["lock_timeouts"] >= 2
        finally:
            os.close(fd)

    def test_reclaim_dead_zeroes_slots_and_sweeps_tmp(self, store, tmp_path):
        dead = _dead_pid()
        # A torn index slot left by a dead writer.
        _SLOT.pack_into(
            store._shm.buf, store._slot_offset(0), b"\x01" * 16, dead, 1
        )
        # An orphaned half-written spill, and a live writer's tmp that
        # must survive the sweep.
        (tmp_path / f"parse-abc.{dead}-123.tmp").write_bytes(b"torn")
        live = tmp_path / f"parse-def.{os.getpid()}-123.tmp"
        live.write_bytes(b"in progress")
        out = store.reclaim_dead()
        assert out["slots"] == 1
        assert out["tmp_files"] == 1
        assert live.exists()
        raw, pid, _gen = struct.unpack_from(
            "<16sII", store._shm.buf, store._slot_offset(0)
        )
        assert pid == 0 and raw == b"\x00" * 16
        health = store.health()
        assert health["slots_reclaimed"] == 1
        assert health["tmp_files_reclaimed"] == 1


class TestCacheQuarantine:
    def test_corrupt_spill_reads_as_miss_and_is_quarantined(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("parse", "k", [1, 2, 3])
        (spill,) = tmp_path.glob("*.art")
        spill.write_bytes(spill.read_bytes()[: spill.stat().st_size // 2])

        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.get("parse", "k") is MISS
        assert fresh.stats["parse"].corrupt_spills == 1
        bad = list(tmp_path.glob("*.art.bad"))
        assert len(bad) == 1  # quarantined, not deleted: evidence
        assert not list(tmp_path.glob("*.art"))

        # Re-derive + re-spill at the original path heals the cache.
        fresh.put("parse", "k", [1, 2, 3])
        healed = ArtifactCache(disk_dir=tmp_path)
        assert healed.get("parse", "k") == [1, 2, 3]
        assert healed.stats["parse"].corrupt_spills == 0


class TestChaosHarness:
    def test_small_chaos_run_has_zero_divergence(self):
        from repro.service.chaos import ChaosConfig, gate_chaos, run_chaos

        config = ChaosConfig(
            jobs=8,
            workers=2,
            clients=2,
            seed=0,
            plan="kill-worker:p=0.5,corrupt-spill:p=0.5",
            distinct_transforms=4,
            cancel_grace=0.5,
        )
        payload = asyncio.run(run_chaos(config))
        if payload["chaos"].get("executor") != "supervised":
            pytest.skip("process workers unavailable")
        problems = gate_chaos(payload)
        assert problems == []
        assert payload["divergence_count"] == 0
        assert payload["chaos"]["states"] == {"done": 8}
        probe = payload["chaos"]["cancel_probe"]
        assert probe["state"] == "cancelled"
        assert probe["cancel_s"] < probe["grace_s"] + 3.0

    def test_gate_flags_missing_faults_and_divergence(self):
        from repro.service.chaos import gate_chaos

        payload = {
            "config": {"plan": "kill-worker:p=0.05", "jobs": 200},
            "divergence_count": 1,
            "divergences": [{"label": "transform[3]", "kind": "result"}],
            "chaos": {
                "executor": "supervised",
                "server_survived": True,
                "states": {"done": 199, "failed": 1},
                "supervisor": {"crashes": 0, "restarts": 0,
                               "max_restarts": 16},
            },
            "reference": {
                "executor": "supervised",
                "server_survived": True,
                "states": {"done": 200},
            },
        }
        problems = gate_chaos(payload)
        assert any("diverged" in p for p in problems)
        assert any("not done" in p for p in problems)
        assert any("injected no worker crashes" in p for p in problems)

    def test_chaos_cli_rejects_bad_plan(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--plan", "explode:p=1"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestServeFaultFlags:
    def test_serve_parser_fault_defaults(self):
        from repro.cli import build_serve_arg_parser

        args = build_serve_arg_parser().parse_args([])
        assert args.job_retries == 1
        assert args.max_worker_restarts == 16
        assert args.cancel_grace == 2.0
        assert args.retry_after_max == 60
        assert args.fault_inject is None

    def test_serve_rejects_bad_fault_plan(self, capsys):
        from repro.cli import main

        assert main(["serve", "--fault-inject", "explode:p=1"]) == 2
        assert "--fault-inject" in capsys.readouterr().err
