"""Platform-registry invariants, cross-platform sweep, and concurrency.

The invariants the refactor must keep (ISSUE 2):

* every *discrete* platform preserves transfer-dominance — unoptimized
  transfer time >= compute time on transfer-bound benchmarks, the
  premise behind the paper's Fig. 5/6 wins;
* ``gh200-unified`` (coherent memory) yields speedup ~= 1.0 with no
  divide-by-zero anywhere in the metric chain;
* concurrent per-variant simulation is bit-identical to the serial
  path;
* a multi-platform sweep parses/transforms each benchmark exactly once
  (observable via the shared cache's hit/miss counters).

Fast, transfer-dominant benchmarks (bfs, backprop, xsbench) keep the
suite quick; the full nine-benchmark behaviour is covered by
``test_suite.py`` on the default platform.
"""

import json

import pytest

from repro.pipeline.batch import BatchWorkerError, parallel_map
from repro.pipeline.manager import PassManager
from repro.runtime import A100_PCIE4, CostModel
from repro.runtime.platform import (
    DEFAULT_PLATFORM,
    PLATFORMS,
    Platform,
    get_platform,
    list_platforms,
    platform_table,
    register_platform,
    resolve_platform,
)
from repro.suite import geometric_mean, run_benchmark, run_sweep
from repro.suite.runner import run_all

DISCRETE = [p.name for p in PLATFORMS.values() if not p.unified_memory]
UNIFIED = [p.name for p in PLATFORMS.values() if p.unified_memory]

# Cache one run per (benchmark, platform): the simulator dominates
# test wall time and every run is deterministic.
_runs = {}


def run_of(name, platform=DEFAULT_PLATFORM):
    key = (name, platform)
    if key not in _runs:
        _runs[key] = run_benchmark(name, platform=platform)
    return _runs[key]


class TestRegistry:
    def test_four_platforms_ship(self):
        for name in ("a100-pcie4", "h100-sxm5", "mi250-if", "gh200-unified"):
            assert name in PLATFORMS

    def test_default_is_ratio_identical_to_historical_constant(self):
        assert get_platform(DEFAULT_PLATFORM).effective_cost_model == A100_PCIE4

    def test_unknown_platform_names_alternatives(self):
        with pytest.raises(KeyError, match="a100-pcie4"):
            get_platform("tpu-v9")

    def test_resolve_accepts_name_descriptor_and_none(self):
        p = get_platform("mi250-if")
        assert resolve_platform("mi250-if") is p
        assert resolve_platform(p) is p
        assert resolve_platform(None).name == DEFAULT_PLATFORM

    def test_list_platforms_default_first(self):
        listed = list_platforms()
        assert listed[0].name == DEFAULT_PLATFORM
        assert {p.name for p in listed} == set(PLATFORMS)

    def test_platform_table_mentions_every_platform(self):
        text = platform_table()
        for name in PLATFORMS:
            assert name in text

    def test_register_rejects_duplicates_unless_override(self):
        custom = Platform(
            name="test-custom", device="d", interconnect="i",
            cost_model=CostModel(),
        )
        register_platform(custom)
        try:
            with pytest.raises(ValueError):
                register_platform(custom)
            register_platform(custom, override=True)  # explicit is fine
            assert get_platform("test-custom") is custom
        finally:
            del PLATFORMS["test-custom"]

    def test_unified_memory_zeroes_explicit_memcpy_cost(self):
        cm = get_platform("gh200-unified").effective_cost_model
        assert cm.memcpy_time(0) == 0.0
        assert cm.memcpy_time(1 << 30) == 0.0
        # compute is still charged
        assert cm.kernel_time(1000) > 0.0

    def test_discrete_platforms_keep_raw_cost_model(self):
        for name in DISCRETE:
            p = get_platform(name)
            assert p.effective_cost_model is p.cost_model

    def test_every_platform_premise_device_beats_host_per_op(self):
        for p in PLATFORMS.values():
            assert p.cost_model.device_op_s < p.cost_model.host_op_s, p.name


class TestPlatformInvariants:
    @pytest.mark.parametrize("platform", DISCRETE)
    @pytest.mark.parametrize("bench", ["bfs", "xsbench"])
    def test_transfer_dominates_unoptimized_on_discrete(self, platform, bench):
        stats = run_of(bench, platform).unoptimized.stats
        compute = stats.kernel_time_s + stats.host_time_s
        assert stats.transfer_time_s >= compute, (platform, bench)

    @pytest.mark.parametrize("platform", DISCRETE)
    def test_tool_still_wins_on_every_discrete_platform(self, platform):
        run = run_of("bfs", platform)
        assert run.outputs_match
        assert run.speedup_x > 1.0
        assert run.transfer_reduction_x > 1.0

    @pytest.mark.parametrize("platform", UNIFIED)
    @pytest.mark.parametrize("bench", ["bfs", "backprop"])
    def test_unified_memory_speedup_is_one(self, platform, bench):
        run = run_of(bench, platform)
        assert run.outputs_match
        # explicit staging is free: the mapping win collapses exactly
        assert run.speedup_x == pytest.approx(1.0)
        assert run.expert_speedup_x == pytest.approx(1.0)
        # 0/0 transfer-time guard: defined, not a ZeroDivisionError
        assert run.transfer_time_improvement_x == 1.0
        assert run.unoptimized.stats.transfer_time_s == 0.0
        # data still moves (semantics intact), it just costs nothing
        assert run.unoptimized.stats.total_bytes > 0

    def test_platform_recorded_on_run(self):
        assert run_of("bfs").platform.name == DEFAULT_PLATFORM

    def test_raw_cost_model_still_accepted(self):
        run = run_benchmark("bfs", cost_model=A100_PCIE4)
        assert run.platform is None
        assert run.ompdart.stats == run_of("bfs").ompdart.stats

    def test_platform_and_cost_model_are_exclusive(self):
        with pytest.raises(ValueError):
            run_benchmark("bfs", platform="a100-pcie4", cost_model=A100_PCIE4)


class TestConcurrentVariants:
    def test_concurrent_bit_identical_to_serial(self):
        serial = run_benchmark("backprop", concurrent_variants=False)
        threaded = run_benchmark("backprop", concurrent_variants=True)
        for variant in ("unoptimized", "ompdart", "expert"):
            a, b = getattr(serial, variant), getattr(threaded, variant)
            assert a.stats == b.stats, variant
            assert a.output == b.output, variant
            assert a.return_code == b.return_code, variant


class TestSweep:
    def test_sweep_reuses_parse_and_transform_across_platforms(self):
        manager = PassManager()
        names = ["bfs", "backprop"]
        # concurrent_variants=False keeps every simulation in-process so
        # the shared manager observes all parse traffic; the process-pool
        # path moves the variant parses into long-lived workers with
        # their own cached pipeline (same reuse, different process).
        sweep = run_sweep(
            list(PLATFORMS),
            names=names,
            manager=manager,
            concurrent_variants=False,
        )
        stats = manager.cache.stats
        # 3 sources per benchmark (unoptimized, ompdart output, expert),
        # each parsed exactly once no matter how many platforms ran.
        assert stats["parse"].misses == 3 * len(names)
        # The tool's rewrite ran once per benchmark, not once per platform.
        assert stats["rewrite"].misses == len(names)
        # Every later platform answered from cache.
        assert stats["parse"].hits >= 3 * len(names) * (len(PLATFORMS) - 1)
        assert set(sweep.summary()) == set(PLATFORMS)

    def test_sweep_default_platform_matches_standalone_run(self):
        sweep = run_sweep([DEFAULT_PLATFORM, "h100-sxm5"], names=["bfs"])
        assert (
            sweep[DEFAULT_PLATFORM].runs["bfs"].ompdart.stats
            == run_of("bfs").ompdart.stats
        )

    def test_sweep_parallel_identical_to_serial(self):
        names = ["bfs", "backprop"]
        platforms = [DEFAULT_PLATFORM, "gh200-unified"]
        serial = run_sweep(platforms, names=names)
        parallel = run_sweep(platforms, names=names, jobs=2)
        for pn in platforms:
            for name in names:
                a, b = serial[pn].runs[name], parallel[pn].runs[name]
                assert a.ompdart.stats == b.ompdart.stats
                assert a.unoptimized.stats == b.unoptimized.stats

    def test_sweep_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            run_sweep([])
        with pytest.raises(ValueError):
            run_sweep([DEFAULT_PLATFORM, DEFAULT_PLATFORM])

    def test_run_all_platforms_returns_sweep(self):
        result = run_all(platforms=[DEFAULT_PLATFORM], names=["bfs"])
        assert result[DEFAULT_PLATFORM].runs["bfs"].outputs_match

    def test_run_all_single_platform_keeps_dict_shape(self):
        result = run_all(names=["bfs"])
        assert set(result) == {"bfs"}
        assert result["bfs"].ompdart.stats == run_of("bfs").ompdart.stats

    def test_run_all_rejects_platforms_with_platform(self):
        with pytest.raises(ValueError):
            run_all(platforms=[DEFAULT_PLATFORM], platform="h100-sxm5")


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            geometric_mean([])

    @pytest.mark.parametrize("bad", [0.0, -1.0, -1e-15])
    def test_non_positive_raises(self, bad):
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, bad, 2.0])


def _explode(item):
    if item == "bad":
        raise RuntimeError("kaboom")
    return item.upper()


class TestWorkerErrorLabels:
    def test_serial_label(self):
        with pytest.raises(BatchWorkerError) as exc:
            parallel_map(
                _explode, ["ok", "bad"], label=lambda i: f"input {i!r}"
            )
        assert "input 'bad'" in str(exc.value)
        assert "kaboom" in str(exc.value)

    def test_process_pool_label(self):
        with pytest.raises(BatchWorkerError) as exc:
            parallel_map(
                _explode,
                ["ok", "fine", "bad", "ok2"],
                jobs=2,
                label=lambda i: f"input {i!r}",
            )
        assert "input 'bad'" in str(exc.value)
        assert "kaboom" in str(exc.value)

    def test_error_survives_pickling(self):
        import pickle

        err = BatchWorkerError("a.c", "RuntimeError: x")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.label == "a.c"
        assert "RuntimeError: x" in str(clone)

    def test_without_label_original_exception_propagates(self):
        with pytest.raises(RuntimeError, match="kaboom"):
            parallel_map(_explode, ["bad"])

    def test_batch_outcome_reports_filename_for_internal_errors(self):
        from repro.pipeline.batch import transform_batch
        from repro.pipeline.passes import Pass

        def boom(ctx):
            raise RuntimeError("pass exploded")

        manager = PassManager(
            passes=[Pass(name="parse", build=boom, cacheable=False)]
        )
        (outcome,) = transform_batch(
            [("int x;", "broken.c")], manager=manager
        )
        assert not outcome.ok
        assert outcome.filename == "broken.c"
        assert "internal error" in outcome.error
        assert "pass exploded" in outcome.error


class TestPerfArtifact:
    def test_json_roundtrip(self, tmp_path):
        from repro.report.perf import SCHEMA, write_suite_json

        sweep = run_sweep(
            [DEFAULT_PLATFORM, "gh200-unified"], names=["bfs"]
        )
        path = tmp_path / "suite.json"
        write_suite_json(sweep, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        assert [p["name"] for p in payload["platforms"]] == [
            DEFAULT_PLATFORM, "gh200-unified",
        ]
        bfs = payload["results"][DEFAULT_PLATFORM]["benchmarks"]["bfs"]
        assert bfs["outputs_match"] is True
        assert bfs["speedup_x"] > 1.0
        assert bfs["variants"]["unoptimized"]["h2d_bytes"] > 0
        assert bfs["tool"]["pass_timings"]
        geo = payload["results"]["gh200-unified"]["geomeans"]
        assert geo["speedup_x"] == pytest.approx(1.0)

    def test_cross_platform_figure(self):
        from repro.report import figure_cross_platform

        sweep = run_sweep(
            [DEFAULT_PLATFORM, "gh200-unified"], names=["bfs"]
        )
        series, text = figure_cross_platform(sweep)
        assert "bfs" in series
        assert DEFAULT_PLATFORM in text and "gh200-unified" in text
        assert "(geomean)" in text
        assert "unified-memory" in text


class TestCLI:
    def test_list_platforms_all_entry_points(self, capsys):
        from repro.cli import main

        for argv in (
            ["--list-platforms"],
            ["batch", "--list-platforms"],
            ["suite", "--list-platforms"],
        ):
            assert main(argv) == 0
            out = capsys.readouterr().out
            for name in PLATFORMS:
                assert name in out

    def test_missing_input_is_usage_error(self, capsys):
        from repro.cli import main

        assert main([]) == 2
        assert "input file is required" in capsys.readouterr().err

    def test_unknown_platform_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "x.c"
        src.write_text("int main() { return 0; }\n")
        assert main([str(src), "--platform", "nope"]) == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_run_simulate(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "in.c"
        src.write_text(
            "int a[4];\nint main() {\n"
            "  a[0] = 1;\n"
            "  #pragma omp target\n"
            "  for (int i = 0; i < 4; i++) a[i] += i;\n"
            '  printf("%d\\n", a[0]);\n  return 0;\n}\n'
        )
        rc = main([str(src), "-o", str(tmp_path / "out.c"), "--simulate",
                   "--platform", "h100-sxm5"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "simulated on h100-sxm5" in captured.err

    def test_suite_json_and_sweep(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "suite.json"
        rc = main([
            "suite", "--benchmarks", "bfs",
            "--platform", "a100-pcie4", "--platform", "gh200-unified",
            "--json", str(path),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert path.exists()
        assert "Cross-platform sweep" in captured.out
        assert "geomean speedup" in captured.out

    def test_suite_unknown_benchmark(self, capsys):
        from repro.cli import main

        assert main(["suite", "--benchmarks", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_suite_repeated_platform_deduped(self, capsys):
        from repro.cli import main

        rc = main([
            "suite", "--benchmarks", "bfs",
            "--platform", "a100-pcie4", "--platform", "a100-pcie4",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        # deduped to a single-platform run: no cross-platform table
        assert "Cross-platform sweep" not in captured.out

    def test_suite_bad_json_dir_fails_before_sweep(self, tmp_path, capsys):
        from repro.cli import main

        blocker = tmp_path / "file"
        blocker.write_text("")
        rc = main([
            "suite", "--benchmarks", "bfs",
            "--json", str(blocker / "sub" / "out.json"),
        ])
        assert rc == 2
        assert "cannot create" in capsys.readouterr().err

    def test_suite_json_creates_parent_dir(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "artifacts" / "suite.json"
        assert main(["suite", "--benchmarks", "bfs", "--json", str(path)]) == 0
        assert path.exists()

    def test_suite_parallel_worker_failure_is_clean(self, capsys, monkeypatch):
        import repro.suite.runner as runner_mod
        from repro.cli import main

        def explode(job):
            raise RuntimeError("worker blew up")

        monkeypatch.setattr(runner_mod, "_sweep_job", explode)
        rc = main(["suite", "--benchmarks", "bfs", "-j", "2"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "benchmark 'bfs'" in captured.err
        assert "worker blew up" in captured.err
