"""Tests for the suite-diff regression gate, the compressed artifact
cache, and the process-based variant pool's wall-time stamping."""

import copy
import json
import pickle
import zlib

import pytest

from repro.pipeline.cache import MISS, ArtifactCache
from repro.report.diff import diff_payloads, render_diff
from repro.report.perf import sweep_to_dict
from repro.suite.runner import run_all, run_benchmark


@pytest.fixture(scope="module")
def baseline_payload():
    sweep = run_all(platforms=["a100-pcie4"], names=["accuracy", "xsbench"])
    return sweep_to_dict(sweep)


# ---------------------------------------------------------------------------
# diff_payloads
# ---------------------------------------------------------------------------


class TestSuiteDiff:
    def test_identical_artifacts_pass(self, baseline_payload):
        result = diff_payloads(baseline_payload, baseline_payload)
        assert result.ok
        assert result.compared > 0
        assert not result.regressions and not result.missing

    def test_byte_inflation_is_a_regression(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        variant = cand["results"]["a100-pcie4"]["benchmarks"]["accuracy"][
            "variants"
        ]["ompdart"]
        variant["h2d_bytes"] = variant["h2d_bytes"] * 3
        result = diff_payloads(baseline_payload, cand)
        assert not result.ok
        assert any(d.metric == "h2d_bytes" for d in result.regressions)

    def test_speedup_drop_is_a_regression(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        run = cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"]
        run["speedup_x"] = run["speedup_x"] * 0.5
        result = diff_payloads(baseline_payload, cand)
        assert any(d.metric == "speedup_x" for d in result.regressions)

    def test_speedup_gain_is_an_improvement_not_failure(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        run = cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"]
        run["speedup_x"] = run["speedup_x"] * 2.0
        result = diff_payloads(baseline_payload, cand)
        assert result.ok
        assert any(d.metric == "speedup_x" for d in result.improvements)

    def test_tolerance_suppresses_small_drift(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        variant = cand["results"]["a100-pcie4"]["benchmarks"]["accuracy"][
            "variants"
        ]["expert"]
        variant["transfer_time_s"] *= 1.005  # 0.5% worse
        assert diff_payloads(baseline_payload, cand, tolerance=0.01).ok
        assert not diff_payloads(baseline_payload, cand, tolerance=0.001).ok

    def test_missing_benchmark_is_a_regression(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        del cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"]
        result = diff_payloads(baseline_payload, cand)
        assert not result.ok
        assert any("xsbench" in entry for entry in result.missing)

    def test_missing_platform_is_a_regression(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        cand["results"] = {}
        result = diff_payloads(baseline_payload, cand)
        assert any("a100-pcie4" in entry for entry in result.missing)

    def test_outputs_match_flip_is_a_regression(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        cand["results"]["a100-pcie4"]["benchmarks"]["accuracy"][
            "outputs_match"
        ] = False
        result = diff_payloads(baseline_payload, cand)
        assert any("outputs no longer match" in entry for entry in result.missing)

    def test_wall_time_noise_is_ignored(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        for run in cand["results"]["a100-pcie4"]["benchmarks"].values():
            for variant in run["variants"].values():
                variant["sim_wall_s"] = variant["sim_wall_s"] * 100 + 5.0
                variant["vectorized_launches"] = 0
        assert diff_payloads(baseline_payload, cand).ok

    def test_non_artifact_schema_rejected(self, baseline_payload):
        with pytest.raises(ValueError, match="schema"):
            diff_payloads({"schema": "something-else/9"}, baseline_payload)

    def test_ratio_reaching_infinity_is_an_improvement(self, baseline_payload):
        """perf._finite serializes inf as null; for lower-is-worse
        ratios that is the best possible value, not a lost metric."""
        cand = copy.deepcopy(baseline_payload)
        cand["results"]["a100-pcie4"]["benchmarks"]["accuracy"][
            "transfer_time_improvement_x"
        ] = None
        result = diff_payloads(baseline_payload, cand)
        assert result.ok
        assert any(
            d.metric == "transfer_time_improvement_x"
            for d in result.improvements
        )

    def test_ratio_leaving_infinity_is_a_regression(self, baseline_payload):
        base = copy.deepcopy(baseline_payload)
        base["results"]["a100-pcie4"]["benchmarks"]["accuracy"][
            "transfer_time_improvement_x"
        ] = None
        result = diff_payloads(base, baseline_payload)
        assert any(
            d.metric == "transfer_time_improvement_x"
            for d in result.regressions
        )

    def test_absent_ratio_key_is_a_regression_not_an_improvement(
        self, baseline_payload
    ):
        """A candidate that silently drops speedup_x must fail the gate
        — only an explicit null means 'improved to infinity'."""
        cand = copy.deepcopy(baseline_payload)
        del cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"]["speedup_x"]
        result = diff_payloads(baseline_payload, cand)
        assert not result.ok
        assert any("speedup_x" in entry for entry in result.missing)

    def test_new_metric_in_candidate_does_not_fail_old_baseline(
        self, baseline_payload
    ):
        base = copy.deepcopy(baseline_payload)
        del base["results"]["a100-pcie4"]["benchmarks"]["xsbench"]["speedup_x"]
        assert diff_payloads(base, baseline_payload).ok

    def test_malformed_artifact_is_a_clean_error(self, baseline_payload):
        bad = {"schema": "ompdart-suite-perf/1", "results": []}
        with pytest.raises(ValueError, match="malformed"):
            diff_payloads(baseline_payload, bad)
        with pytest.raises(ValueError, match="malformed"):
            diff_payloads(bad, baseline_payload)

    def test_render_mentions_verdict(self, baseline_payload):
        text = render_diff(diff_payloads(baseline_payload, baseline_payload))
        assert "suite-diff: OK" in text


class TestSuiteDiffCLI:
    def test_exit_codes(self, baseline_payload, tmp_path, capsys):
        from repro.cli import main

        base = tmp_path / "base.json"
        base.write_text(json.dumps(baseline_payload))
        cand = copy.deepcopy(baseline_payload)
        cand["results"]["a100-pcie4"]["benchmarks"]["accuracy"]["variants"][
            "unoptimized"
        ]["total_time_s"] *= 10
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(cand))

        assert main(["suite-diff", str(base), str(base)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["suite-diff", str(base), str(bad)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["suite-diff", str(base), str(tmp_path / "nope.json")]) == 2
        assert main(["suite-diff", str(base), str(base), "--tolerance", "-1"]) == 2

    def test_committed_baseline_matches_a_fresh_run(self, tmp_path):
        """The CI gate: regenerating the artifact must not regress
        against the committed baseline."""
        import pathlib

        from repro.cli import main

        committed = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks"
            / "suite_a100-pcie4.json"
        )
        fresh = tmp_path / "fresh.json"
        assert main(["suite", "--json", str(fresh)]) == 0
        assert main(["suite-diff", str(committed), str(fresh)]) == 0


# ---------------------------------------------------------------------------
# Compressed disk cache
# ---------------------------------------------------------------------------


class TestCompressedCache:
    def test_spills_are_compressed_and_counted(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        artifact = {"nodes": list(range(500)), "text": "x" * 4000}
        raw_len = len(pickle.dumps(artifact, protocol=5))
        cache.put("parse", "k1", artifact)
        stat = cache.stats["parse"]
        assert 0 < stat.disk_bytes_written < raw_len
        assert cache.disk_usage() == stat.disk_bytes_written

        # A fresh cache (cold memory) reads it back through zlib.
        other = ArtifactCache(disk_dir=tmp_path)
        assert other.get("parse", "k1") == artifact
        assert other.stats["parse"].disk_bytes_read == stat.disk_bytes_written

    def test_legacy_uncompressed_spills_still_load(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        path = cache._disk_path("parse", "old")
        with open(path, "wb") as fh:
            pickle.dump({"legacy": True}, fh)
        assert cache.get("parse", "old") == {"legacy": True}

    def test_corrupt_spill_is_a_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        path = cache._disk_path("parse", "bad")
        path.write_bytes(zlib.compress(b"not a pickle"))
        assert cache.get("parse", "bad") is MISS

    def test_memory_only_cache_counts_no_bytes(self):
        cache = ArtifactCache()
        cache.put("parse", "k", 1)
        assert cache.get("parse", "k") == 1
        stat = cache.stats["parse"]
        assert stat.disk_bytes_read == 0 and stat.disk_bytes_written == 0
        assert cache.disk_usage() == 0


# ---------------------------------------------------------------------------
# Process-based variant pool + wall-time stamping
# ---------------------------------------------------------------------------


class TestVariantPool:
    def test_pool_matches_serial_bit_for_bit(self):
        pooled = run_benchmark("xsbench", concurrent_variants=True)
        serial = run_benchmark("xsbench", concurrent_variants=False)
        for a, b in [
            (pooled.unoptimized, serial.unoptimized),
            (pooled.ompdart, serial.ompdart),
            (pooled.expert, serial.expert),
        ]:
            assert a.output == b.output
            assert a.stats == b.stats
            assert a.vectorized_launches == b.vectorized_launches

    def test_wall_time_recorded_on_every_variant(self):
        run = run_benchmark("accuracy")
        for result in (run.unoptimized, run.ompdart, run.expert):
            assert result.wall_time_s > 0.0

    def test_artifact_carries_wall_time_and_vectorization(
        self, baseline_payload
    ):
        variants = baseline_payload["results"]["a100-pcie4"]["benchmarks"][
            "xsbench"
        ]["variants"]
        for profile in variants.values():
            assert profile["sim_wall_s"] > 0.0
            assert (
                profile["vectorized_launches"] == profile["kernel_launches"]
            )

    def test_no_vectorize_threads_through_run_all(self):
        runs = run_all(names=["xsbench"], vectorize=False)
        assert runs["xsbench"].ompdart.vectorized_launches == 0
        runs = run_all(names=["xsbench"], vectorize=True)
        assert runs["xsbench"].ompdart.vectorized_launches > 0


# ---------------------------------------------------------------------------
# Vectorizer-coverage gate (phase 2)
# ---------------------------------------------------------------------------


class TestCoverageGate:
    def test_artifact_carries_strategy_fields(self, baseline_payload):
        variants = baseline_payload["results"]["a100-pcie4"]["benchmarks"][
            "xsbench"
        ]["variants"]
        for profile in variants.values():
            assert profile["vector_strategy"] == "codegen"
            assert profile["fallback_reason"] is None
            assert profile["strategy_launches"] == {
                "codegen": profile["kernel_launches"]
            }

    def test_regression_to_interpreter_fails(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        variant = cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"][
            "variants"
        ]["ompdart"]
        variant["vector_strategy"] = "interpreter"
        result = diff_payloads(baseline_payload, cand)
        assert not result.ok
        assert any("strategy downgrade" in entry for entry in result.missing)

    def test_strategy_downgrade_fails(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        variant = cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"][
            "variants"
        ]["ompdart"]
        variant["vector_strategy"] = "masked"  # straight -> masked
        result = diff_payloads(baseline_payload, cand)
        assert not result.ok
        assert any("strategy downgrade" in entry for entry in result.missing)

    def test_strategy_upgrade_is_an_improvement(self, baseline_payload):
        base = copy.deepcopy(baseline_payload)
        variant = base["results"]["a100-pcie4"]["benchmarks"]["xsbench"][
            "variants"
        ]["ompdart"]
        variant["vector_strategy"] = "masked"
        result = diff_payloads(base, baseline_payload)
        assert result.ok
        assert any(
            d.metric == "vector_strategy" for d in result.improvements
        )

    def test_missing_strategy_field_is_a_regression(self, baseline_payload):
        cand = copy.deepcopy(baseline_payload)
        variant = cand["results"]["a100-pcie4"]["benchmarks"]["xsbench"][
            "variants"
        ]["ompdart"]
        del variant["vector_strategy"]
        result = diff_payloads(baseline_payload, cand)
        assert not result.ok
        assert any("vector_strategy" in entry for entry in result.missing)

    def test_pre_phase2_baseline_offers_nothing_to_gate(
        self, baseline_payload
    ):
        base = copy.deepcopy(baseline_payload)
        base["schema"] = "ompdart-suite-perf/1"
        for run in base["results"]["a100-pcie4"]["benchmarks"].values():
            for profile in run["variants"].values():
                profile.pop("vector_strategy", None)
                profile.pop("fallback_reason", None)
                profile.pop("strategy_launches", None)
        result = diff_payloads(base, baseline_payload)
        assert result.ok

    def test_committed_baseline_has_full_coverage(self):
        with open("benchmarks/suite_a100-pcie4.json", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["schema"] == "ompdart-suite-perf/4"
        for sweep in payload["results"].values():
            for run in sweep["benchmarks"].values():
                for profile in run["variants"].values():
                    assert profile["fallback_reason"] is None
                    assert (
                        profile["vectorized_launches"]
                        == profile["kernel_launches"]
                    )
                    assert profile["vector_strategy"] != "interpreter"
