"""Tests for the rewrite buffer and directive emission (section IV-F)."""

import pytest

from repro.core import transform_source
from repro.rewrite.buffer import RewriteBuffer


class TestRewriteBuffer:
    def test_single_insert(self):
        buf = RewriteBuffer("hello world")
        buf.insert(5, ",")
        assert buf.apply() == "hello, world"

    def test_insert_at_start_and_end(self):
        buf = RewriteBuffer("mid")
        buf.insert(0, "<")
        buf.insert(3, ">")
        assert buf.apply() == "<mid>"

    def test_offsets_are_original_coordinates(self):
        buf = RewriteBuffer("abcdef")
        buf.insert(2, "XXX")
        buf.insert(4, "YY")  # original offset 4, unaffected by first edit
        assert buf.apply() == "abXXXcdYYef"

    def test_priority_orders_same_offset(self):
        buf = RewriteBuffer("x")
        buf.insert(0, "b", priority=1)
        buf.insert(0, "a", priority=-1)
        assert buf.apply() == "abx"

    def test_out_of_range_raises(self):
        buf = RewriteBuffer("ab")
        with pytest.raises(ValueError):
            buf.insert(5, "x")

    def test_line_start_and_end(self):
        buf = RewriteBuffer("one\ntwo\nthree")
        assert buf.line_start(5) == 4
        assert buf.line_end(5) == 7

    def test_logical_line_end_follows_continuations(self):
        text = "#pragma omp target \\\n  map(to: a)\nint x;"
        buf = RewriteBuffer(text)
        end = buf.logical_line_end(0)
        assert text[end - 1] == ")"

    def test_indentation_at(self):
        buf = RewriteBuffer("  \tcode here")
        assert buf.indentation_at(6) == "  \t"

    def test_insert_before_line(self):
        buf = RewriteBuffer("a\n  b\nc")
        buf.insert_before_line(4, "X")
        assert buf.apply() == "a\nX  b\nc"


class TestEmittedSourceShape:
    SRC = """int a[8];
int b[8];
int main() {
  a[0] = 1;
  #pragma omp target
  for (int i = 0; i < 8; i++) a[i] += b[i];
  b[0] = a[0];
  #pragma omp target
  for (int i = 0; i < 8; i++) a[i] += 1;
  int out = a[0];
  printf("%d", out);
  return 0;
}
"""

    def test_region_braces_balance(self):
        res = transform_source(self.SRC, "shape.c")
        out = res.output_source
        assert out.count("{") == out.count("}")

    def test_captured_block_reindented(self):
        res = transform_source(self.SRC, "shape.c")
        out = res.output_source
        # the region body gains one indentation level
        assert "\n    #pragma omp target\n" in out

    def test_update_consolidation(self):
        # two variables needing the same update point merge into one
        # directive (paper: "condenses the constructs into a directive
        # per insertion point").
        src = """int a[8]; int b[8]; int c;
int main() {
  #pragma omp target
  for (int i = 0; i < 8; i++) { a[i] = i; b[i] = 2 * i; }
  c = a[0] + b[0];
  #pragma omp target
  for (int i = 0; i < 8; i++) { a[i] += b[i]; }
  printf("%d", c + a[0]);
  return 0;
}
"""
        res = transform_source(src, "consol.c")
        out = res.output_source
        assert out.count("#pragma omp target update") == 1
        upd_line = [line for line in out.splitlines() if "target update" in line][0]
        assert "a" in upd_line and "b" in upd_line

    def test_output_reparses_and_runs(self):
        from repro.frontend import parse_source
        from repro.runtime import run_simulation

        res = transform_source(self.SRC, "shape.c")
        parse_source(res.output_source, "out.c")
        before = run_simulation(self.SRC)
        after = run_simulation(res.output_source)
        assert before.output == after.output
