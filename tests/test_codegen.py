"""Source-level kernel codegen: bit-identity, artifact reuse, launch path.

Three contracts from the codegen tier:

* **Bit-identity** — for every corpus variant, the generated NumPy
  source (vector tier), the generated sequential-scalar source (replay
  tier) and the closure interpreter produce identical output, stats and
  memcpy records.
* **Artifact reuse** — codegen rows are pipeline artifacts: batch
  workers share compiled kernels through the cross-process store.
* **Launch specialization** — the per-launch-signature fast path falls
  back (and re-records) safely when a kernel's bindings change mid-run.
"""

import pytest

import repro.runtime.vectorize as V
from repro.core.tool import OMPDart, ToolOptions
from repro.pipeline.manager import PassManager
from repro.runtime.interp import run_simulation
from repro.suite.registry import BENCHMARK_ORDER, get_benchmark


def assert_identical(a, b):
    assert a.output == b.output
    assert a.return_code == b.return_code
    assert a.stats == b.stats  # calls, bytes, times, launches — all of it
    assert a.profiler.records == b.profiler.records


@pytest.fixture
def replay_only(monkeypatch):
    """Route every kernel through the sequential replay tier only.

    ``compile_kernel_candidates`` always appends the (lazy) replay
    candidate last; keeping just that one forces each launch through
    the generated sequential-scalar source, with the interpreter as the
    safety net for kernels replay itself declines.
    """
    original = V.compile_kernel_candidates

    def only_replay(interp, stmt):
        candidates, note = original(interp, stmt)
        return candidates[-1:], note

    monkeypatch.setattr(V, "compile_kernel_candidates", only_replay)


# ---------------------------------------------------------------------------
# codegen <-> replay <-> interpreter identity across all 27 corpus variants
# ---------------------------------------------------------------------------

_TRANSFORMED: dict = {}


def _variant_source(name: str, variant: str) -> str:
    bench = get_benchmark(name)
    if variant == "unoptimized":
        return bench.unoptimized_source()
    if variant == "expert":
        return bench.expert_source()
    if name not in _TRANSFORMED:
        _TRANSFORMED[name] = OMPDart(ToolOptions()).run(
            bench.unoptimized_source(), f"{name}.c"
        ).output_source
    return _TRANSFORMED[name]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
@pytest.mark.parametrize("variant", ["unoptimized", "ompdart", "expert"])
def test_corpus_tier_identity(name, variant, replay_only):
    """Replay-tier execution matches the closure interpreter exactly.

    (The vector-tier <-> interpreter half of the triangle is pinned by
    ``test_vectorize.test_corpus_equality`` over the same 27 variants;
    together the two files close codegen <-> replay <-> interpreter.)
    """
    source = _variant_source(name, variant)
    filename = f"{name}_{variant}.c"
    interp = run_simulation(source, filename, vectorize=False)
    replay = run_simulation(source, filename, vectorize=True)
    assert_identical(interp, replay)
    # The replay tier really ran: its launches count as vectorized.
    assert replay.vectorized_launches == replay.stats.kernel_launches > 0


def test_replay_row_rides_the_pipeline_artifact():
    """A precompiled codegen row (pipeline artifact) is what replay
    executes — no local re-emission when the interpreter carries rows."""
    src = """
    double a[32];
    double b[32];
    int main() {
      for (int i = 0; i < 32; i++) { a[i] = i * 0.5; b[i] = 0.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 1; i < 32; i++) {
        b[i] = b[i - 1] + a[i];
      }
      double s = 0.0;
      for (int i = 0; i < 32; i++) { s += b[i]; }
      printf("s %.6f\\n", s);
      return 0;
    }
    """
    manager = PassManager()
    ctx = manager.run(src, "carried.c", until="codegen")
    rows = ctx.artifact("codegen")
    assert rows and all(r["reason"] is None for r in rows.values())
    interp = run_simulation(src, "carried.c", vectorize=False)
    vec = run_simulation(
        src,
        "carried.c",
        vectorize=True,
        tu=ctx.artifact("parse"),
        codegen_rows=rows,
    )
    # The loop-carried dependency forces the sequential replay tier,
    # which must execute the artifact's generated source bit-exactly.
    assert_identical(interp, vec)
    assert vec.vectorized_launches == vec.stats.kernel_launches > 0


def test_noncanonical_loop_declines_with_reason():
    """A non-canonical nest yields a row carrying the decline reason —
    the same message the closure fallback reports."""
    src = """
    double a[8];
    int main() {
      double x = 0.0;
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i = i + 3) {
        a[i] = 1.0;
      }
      printf("%.1f\\n", a[0] + a[3]);
      return 0;
    }
    """
    manager = PassManager()
    rows = manager.run(src, "noncanon.c", until="codegen").artifact("codegen")
    interp = run_simulation(src, "noncanon.c", vectorize=False)
    vec = run_simulation(src, "noncanon.c", vectorize=True)
    assert_identical(interp, vec)
    assert len(rows) == 1
    (row,) = rows.values()
    if row["reason"] is not None:
        assert row["source"] is None and row["key"] is None


# ---------------------------------------------------------------------------
# Cross-process reuse of compiled rows through the artifact store
# ---------------------------------------------------------------------------

BENCH_SRC = """
int data[128];
int main() {
  data[1] = 2;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 128; i++) data[i] = data[i] + %d;
  return data[1];
}
"""


def test_codegen_rows_hit_cross_worker_store(tmp_path):
    """The acceptance path: ``batch -j 2 --cache-dir D`` over a corpus
    with duplicates shows cross-worker ``codegen`` store hits."""
    from repro.pipeline.batch import BatchRunStats, transform_paths

    cache_dir = tmp_path / "cache"
    paths = []
    for i in range(6):
        p = tmp_path / f"input_{i}.c"
        p.write_text(BENCH_SRC % i)
        paths.append(str(p))
    run_stats = BatchRunStats()
    outcomes = transform_paths(
        paths + paths,  # duplicates trail the originals
        jobs=2,
        cache_dir=str(cache_dir),
        run_stats=run_stats,
        # Submit-time dedup would collapse the duplicate paths before
        # they ever reach a worker; disable it so the second copies
        # exercise the cross-worker store, which is what this test pins.
        dedup=False,
    )
    assert all(o.ok for o in outcomes)
    if run_stats.store is None:
        pytest.skip("shared memory unavailable on this host")
    codegen = run_stats.store.passes.get("codegen")
    assert codegen is not None
    assert codegen.cross_worker_hits > 0


# ---------------------------------------------------------------------------
# Launch-signature specialization
# ---------------------------------------------------------------------------


def test_signature_change_falls_back_and_rerecords():
    """A kernel in a function launched against different arrays: the
    recorded launch signature no longer holds on the second call, so
    the plan must re-record instead of replaying stale bindings."""
    src = """
    double a[64];
    double b[64];
    void scale(double *p) {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 64; i++) { p[i] = p[i] * 2.0 + 1.0; }
    }
    int main() {
      for (int i = 0; i < 64; i++) { a[i] = i * 0.5; b[i] = i * 0.25; }
      scale(a);
      scale(b);
      scale(a);
      double s = 0.0;
      for (int i = 0; i < 64; i++) { s += a[i] + b[i]; }
      printf("s %.6f\\n", s);
      return 0;
    }
    """
    interp = run_simulation(src, "sig.c", vectorize=False)
    vec = run_simulation(src, "sig.c", vectorize=True)
    assert_identical(interp, vec)
    assert vec.vector_strategy == "codegen"
    assert vec.vectorized_launches == vec.stats.kernel_launches == 3


def test_scalar_bound_change_recomputes_lanes():
    """The launch-state cache keys on scalar values: a changed loop
    bound between launches must produce fresh lanes, not stale ones."""
    src = """
    double a[64];
    int n;
    int main() {
      for (int i = 0; i < 64; i++) { a[i] = 0.0; }
      n = 16;
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
      n = 48;
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
      double s = 0.0;
      for (int i = 0; i < 64; i++) { s += a[i]; }
      printf("s %.1f\\n", s);
      return 0;
    }
    """
    interp = run_simulation(src, "bound.c", vectorize=False)
    vec = run_simulation(src, "bound.c", vectorize=True)
    assert_identical(interp, vec)
    assert "s 64.0" in vec.output
