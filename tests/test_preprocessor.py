"""Unit tests for the preprocessor-lite."""

import pytest

from repro.diagnostics import ParseError
from repro.frontend.preprocessor import preprocess
from repro.frontend.tokens import TokenKind


def values(text, predefined=None):
    toks, _ = preprocess(text, predefined=predefined or {})
    return [(t.kind, t.text, t.value) for t in toks[:-1]]


def texts(text, predefined=None):
    toks, _ = preprocess(text, predefined=predefined or {})
    return [t.text for t in toks[:-1]]


class TestObjectMacros:
    def test_simple_expansion(self):
        toks, _ = preprocess("#define N 100\nint a[N];")
        lit = [t for t in toks if t.kind is TokenKind.INT_LITERAL][0]
        assert lit.value == 100
        assert lit.expanded_from == "N"

    def test_expansion_keeps_use_site_location(self):
        src = "#define N 100\nint a[N];"
        toks, buf = preprocess(src)
        lit = [t for t in toks if t.kind is TokenKind.INT_LITERAL][0]
        assert buf.text[lit.location.offset] == "N"

    def test_multi_token_body(self):
        assert texts("#define SZ (4 * 8)\nint a = SZ;") == [
            "int", "a", "=", "(", "4", "*", "8", ")", ";",
        ]

    def test_nested_macros(self):
        src = "#define A 1\n#define B (A + A)\nint x = B;"
        assert "1" in texts(src)

    def test_self_referential_macro_does_not_loop(self):
        src = "#define X X\nint X;"
        assert texts(src) == ["int", "X", ";"]

    def test_undef(self):
        src = "#define N 1\n#undef N\nint N;"
        assert texts(src) == ["int", "N", ";"]

    def test_redefinition_wins(self):
        src = "#define N 1\n#define N 2\nint a = N;"
        toks, _ = preprocess(src)
        lit = [t for t in toks if t.kind is TokenKind.INT_LITERAL][0]
        assert lit.value == 2

    def test_predefined_macros(self):
        toks, _ = preprocess("int a[SIZE];", predefined={"SIZE": 64})
        lit = [t for t in toks if t.kind is TokenKind.INT_LITERAL][0]
        assert lit.value == 64


class TestFunctionMacros:
    def test_basic_call(self):
        src = "#define SQ(x) ((x) * (x))\nint a = SQ(3);"
        assert texts(src).count("3") == 2

    def test_two_params(self):
        src = "#define ADD(a, b) (a + b)\nint x = ADD(1, 2);"
        t = texts(src)
        assert "1" in t and "2" in t and "+" in t

    def test_arg_with_nested_parens(self):
        src = "#define ID(x) x\nint a = ID(f(1, 2));"
        assert texts(src) == ["int", "a", "=", "f", "(", "1", ",", "2", ")", ";"]

    def test_name_without_call_not_expanded(self):
        src = "#define F(x) x\nint F;"
        assert texts(src) == ["int", "F", ";"]

    def test_wrong_arity_raises(self):
        with pytest.raises(ParseError):
            preprocess("#define F(a, b) a\nint x = F(1);")

    def test_zero_arg_macro(self):
        src = "#define GET() 5\nint x = GET();"
        assert "5" in texts(src)


class TestConditionals:
    def test_ifdef_taken(self):
        src = "#define X 1\n#ifdef X\nint a;\n#endif\nint b;"
        assert texts(src) == ["int", "a", ";", "int", "b", ";"]

    def test_ifdef_not_taken(self):
        src = "#ifdef X\nint a;\n#endif\nint b;"
        assert texts(src) == ["int", "b", ";"]

    def test_ifndef(self):
        src = "#ifndef X\nint a;\n#endif"
        assert texts(src) == ["int", "a", ";"]

    def test_else_branch(self):
        src = "#ifdef X\nint a;\n#else\nint b;\n#endif"
        assert texts(src) == ["int", "b", ";"]

    def test_nested_conditionals(self):
        src = (
            "#define A 1\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n#endif\n#endif"
        )
        assert texts(src) == ["int", "y", ";"]

    def test_if_literal(self):
        assert texts("#if 0\nint a;\n#endif\nint b;") == ["int", "b", ";"]
        assert texts("#if 1\nint a;\n#endif") == ["int", "a", ";"]

    def test_unterminated_conditional_raises(self):
        with pytest.raises(ParseError):
            preprocess("#ifdef X\nint a;")

    def test_endif_without_if_raises(self):
        with pytest.raises(ParseError):
            preprocess("#endif")

    def test_defines_inside_false_branch_ignored(self):
        src = "#ifdef X\n#define N 5\n#endif\nint N;"
        assert texts(src) == ["int", "N", ";"]


class TestPassthrough:
    def test_include_skipped(self):
        assert texts("#include <stdio.h>\nint a;") == ["int", "a", ";"]

    def test_include_quotes_skipped(self):
        assert texts('#include "local.h"\nint a;') == ["int", "a", ";"]

    def test_omp_pragma_survives(self):
        toks, _ = preprocess("#pragma omp target\nint a;")
        assert toks[0].kind is TokenKind.PRAGMA

    def test_non_omp_pragma_dropped(self):
        toks, _ = preprocess("#pragma once\nint a;")
        assert toks[0].kind is not TokenKind.PRAGMA

    def test_unknown_directive_raises(self):
        with pytest.raises(ParseError):
            preprocess("#banana\nint a;")
