"""PR-10 frontend fast path: profile artifact, fused-analysis identity,
synthetic corpus, bench-batch gating, and the lazy CLI cold start.

The heavyweight check here is the fused-vs-legacy plan identity sweep:
every corpus variant (9 benchmarks x unoptimized / tool-transformed /
expert) is pushed through both analysis paths in one subprocess — the
node-id counter is reset per run so both paths see identical allocation
state — and the canonical artifact encodings must match byte for byte.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.report.batch_perf import (
    gate_batch_perf,
    load_batch_perf,
    render_batch_perf,
    run_bench_batch,
    write_batch_json,
)
from repro.report.profile import (
    SCHEMA as PROFILE_SCHEMA,
    aggregate_profile,
    load_profile,
    profile_source,
    render_profile,
    write_profile_json,
)
from repro.suite.registry import BENCHMARK_ORDER, get_benchmark
from repro.suite.synth import DUPLICATE_SHARE, generate_corpus, write_corpus

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC_DIR)
    return env


# ---------------------------------------------------------------------------
# ompdart-profile/1 artifact
# ---------------------------------------------------------------------------


SMALL_KERNEL = """
int main() {
  double a[64], b[64];
  for (int i = 0; i < 64; i++) a[i] = i;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; i++) b[i] = a[i] * 2.0;
  double sum = 0.0;
  for (int i = 0; i < 64; i++) sum += b[i];
  return sum > 0.0 ? 0 : 1;
}
"""


class TestProfileArtifact:
    def test_schema_round_trip(self, tmp_path):
        payload = profile_source(SMALL_KERNEL, "small.c")
        path = str(tmp_path / "profile.json")
        write_profile_json(payload, path)
        loaded = load_profile(path)
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["schema"] == PROFILE_SCHEMA
        assert loaded["kind"] == "single"
        assert loaded["count"] == 1
        assert loaded["error"] is None

    def test_pass_walls_sum_to_total_within_tolerance(self):
        payload = profile_source(SMALL_KERNEL, "small.c")
        wall = payload["wall_s"]
        pass_sum = sum(row["wall_s"] for row in payload["passes"])
        # Pass walls are measured inside the run wall: their sum can
        # never meaningfully exceed it, and the inter-pass overhead
        # (cache-key hashing, dict shuffling) should stay a small slice.
        assert pass_sum <= wall * 1.05
        assert pass_sum >= wall * 0.5, (pass_sum, wall)

    def test_phases_cover_the_same_time_as_passes(self):
        payload = profile_source(SMALL_KERNEL, "small.c")
        pass_sum = sum(row["wall_s"] for row in payload["passes"])
        phase_sum = sum(row["wall_s"] for row in payload["phases"])
        # lex+macro re-partition preprocess exactly; the other phases
        # are pass groupings, so the two decompositions must agree.
        assert phase_sum == pytest.approx(pass_sum, rel=0.05, abs=1e-3)
        names = [row["name"] for row in payload["phases"]]
        assert names[:2] == ["lex", "macro"]
        assert "plan" in names and "parse" in names

    def test_single_profile_records_allocations(self):
        payload = profile_source(SMALL_KERNEL, "small.c")
        parse = next(r for r in payload["passes"] if r["name"] == "parse")
        assert parse["alloc_kb"] is not None and parse["alloc_kb"] > 0
        assert parse["peak_kb"] >= parse["alloc_kb"]

    def test_error_input_still_profiles(self):
        # Parses fine, rejected by the constraints pass (user-written
        # data-management directives are OMPDart input violations).
        bad = textwrap.dedent(
            """
            int main() {
              int a[4];
              #pragma omp target data map(to: a)
              {
                a[0] = 1;
              }
              return 0;
            }
            """
        )
        payload = profile_source(bad, "bad.c")
        assert payload["error"]
        assert any(r["name"] == "parse" for r in payload["passes"])

    def test_aggregate_profile_folds_timings(self):
        payload = aggregate_profile(
            [{"preprocess": 0.1, "parse": 0.2}, {"preprocess": 0.3}],
            ["a.c", "b.c"],
            wall_s=0.7,
        )
        assert payload["kind"] == "aggregate"
        assert payload["count"] == 2
        assert payload["wall_s"] == 0.7
        by_name = {r["name"]: r for r in payload["passes"]}
        assert by_name["preprocess"]["wall_s"] == pytest.approx(0.4)
        assert by_name["preprocess"]["alloc_kb"] is None
        frontend = next(
            r for r in payload["phases"] if r["name"] == "frontend"
        )
        assert frontend["wall_s"] == pytest.approx(0.6)

    def test_render_profile_mentions_every_pass(self):
        payload = profile_source(SMALL_KERNEL, "small.c")
        table = render_profile(payload)
        for row in payload["passes"]:
            assert row["name"] in table

    def test_load_profile_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "notprofile.json"
        path.write_text(json.dumps({"schema": "ompdart-suite-perf/1"}))
        with pytest.raises(ValueError):
            load_profile(str(path))


# ---------------------------------------------------------------------------
# Fused single-walk analysis == legacy multi-walk analysis (bit identity)
# ---------------------------------------------------------------------------


_IDENTITY_DRIVER = textwrap.dedent(
    """
    import hashlib, itertools, json, sys

    from repro.cfg import graph as cfg_graph
    from repro.diagnostics import ToolError
    from repro.frontend import ast_nodes
    from repro.pipeline.artifacts import encode_spill
    from repro.pipeline.context import ToolOptions
    from repro.pipeline.manager import PassManager
    from repro.suite.registry import BENCHMARK_ORDER, get_benchmark


    def digest(source, filename, legacy):
        # Reset BOTH global id counters (AST nodes and CFG nodes) so
        # the two analysis paths see identical allocation state; both
        # runs share one process, so set/dict iteration order is
        # identical too.
        ast_nodes._node_ids = itertools.count()
        cfg_graph._cfg_node_ids = itertools.count(1)
        manager = PassManager(cache=None)
        try:
            ctx = manager.run(
                source, filename, ToolOptions(legacy_analysis=legacy)
            )
        except ToolError as exc:
            return {"error": str(exc) + "|" + repr(exc.diagnostics)}
        return {
            "plan": hashlib.sha256(
                encode_spill("plan", ctx.artifact("plan"))
            ).hexdigest(),
            "constraints": hashlib.sha256(
                encode_spill("constraints", ctx.artifact("constraints"))
            ).hexdigest(),
            "output": hashlib.sha256(
                ctx.artifact("rewrite").encode()
            ).hexdigest(),
        }


    def transformed_source(source, filename):
        ast_nodes._node_ids = itertools.count()
        cfg_graph._cfg_node_ids = itertools.count(1)
        return PassManager(cache=None).run(source, filename).artifact(
            "rewrite"
        )


    results = {}
    for name in BENCHMARK_ORDER:
        bench = get_benchmark(name)
        unopt = bench.unoptimized_source()
        variants = {
            "unoptimized": unopt,
            "transformed": transformed_source(unopt, name + ".c"),
            "expert": bench.expert_source(),
        }
        for variant, source in variants.items():
            key = f"{name}/{variant}"
            results[key] = {
                "fused": digest(source, key + ".c", False),
                "legacy": digest(source, key + ".c", True),
            }
    json.dump(results, open(sys.argv[1], "w"))
    """
)


def test_fused_analysis_is_bit_identical_to_legacy(tmp_path):
    """All 27 corpus variants: fused plans == legacy plans, byte for
    byte (or identical diagnostics where the variant is rejected)."""
    out_path = str(tmp_path / "identity.json")
    proc = subprocess.run(
        [sys.executable, "-c", _IDENTITY_DRIVER, out_path],
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    results = json.load(open(out_path))
    assert len(results) == 27
    mismatches = {
        key: pair for key, pair in results.items()
        if pair["fused"] != pair["legacy"]
    }
    assert not mismatches, mismatches
    # The sweep must exercise both outcomes: plannable variants and
    # constraint-rejected ones (experts carry data-mapping directives).
    assert any("plan" in pair["fused"] for pair in results.values())
    assert any("error" in pair["fused"] for pair in results.values())


# ---------------------------------------------------------------------------
# Synthetic corpus generator
# ---------------------------------------------------------------------------


class TestSyntheticCorpus:
    def test_deterministic_across_calls(self):
        assert generate_corpus(40, seed=7) == generate_corpus(40, seed=7)

    def test_seeds_differ(self):
        assert generate_corpus(10, seed=1) != generate_corpus(10, seed=2)

    def test_duplicate_share_is_roughly_nominal(self):
        corpus = generate_corpus(400, seed=0)
        unique = len({source for _, source in corpus})
        duplicates = len(corpus) - unique
        share = duplicates / len(corpus)
        assert abs(share - DUPLICATE_SHARE) < 0.1, share

    def test_filenames_unique_and_cycle_benchmarks(self):
        corpus = generate_corpus(18, seed=0)
        names = [filename for filename, _ in corpus]
        assert len(set(names)) == 18
        for i, name in enumerate(names):
            assert BENCHMARK_ORDER[i % len(BENCHMARK_ORDER)] in name

    def test_variants_differ_from_base_but_transform(self):
        base = get_benchmark("bfs").unoptimized_source()
        corpus = generate_corpus(9, seed=3)
        bfs_files = [s for f, s in corpus if "bfs" in f]
        assert bfs_files and all(s != base for s in bfs_files)
        from repro.pipeline.batch import transform_batch

        outcomes = transform_batch([(bfs_files[0], "bfs_variant.c")])
        assert outcomes[0].ok, outcomes[0].error

    def test_write_corpus_round_trips(self, tmp_path):
        paths = write_corpus(tmp_path / "corpus", 6, seed=5)
        assert len(paths) == 6
        expected = dict(generate_corpus(6, seed=5))
        for path in paths:
            assert path.read_text() == expected[path.name]


# ---------------------------------------------------------------------------
# bench-batch: measurement and gating
# ---------------------------------------------------------------------------


class TestBenchBatch:
    def test_payload_shape(self):
        payload = run_bench_batch(12, seed=1)
        assert payload["schema"] == "ompdart-batch-perf/1"
        assert payload["count"] == 12
        assert payload["ok_count"] == 12
        assert payload["files_per_sec"] > 0
        dedup = payload["dedup"]
        assert dedup["unique"] + dedup["duplicates"] == 12
        assert payload["pass_wall_s"].get("plan", 0) > 0

    def test_gate_passes_clean_run(self):
        payload = run_bench_batch(6, seed=0)
        assert gate_batch_perf(payload) == []

    def test_gate_flags_failures_and_floors(self):
        payload = {
            "schema": "ompdart-batch-perf/1",
            "count": 10,
            "ok_count": 9,
            "files_per_sec": 5.0,
        }
        problems = gate_batch_perf(payload, min_files_per_sec=50.0)
        assert len(problems) == 2
        assert "failed to transform" in problems[0]
        assert "floor" in problems[1]

    def test_gate_compares_against_baseline(self):
        payload = {
            "schema": "ompdart-batch-perf/1",
            "count": 4,
            "ok_count": 4,
            "files_per_sec": 50.0,
        }
        fast_base = {"files_per_sec": 100.0}
        assert gate_batch_perf(payload, baseline=fast_base, tolerance=0.2)
        assert not gate_batch_perf(
            payload, baseline=fast_base, tolerance=0.6
        )
        assert not gate_batch_perf(
            payload, baseline={"files_per_sec": 55.0}, tolerance=0.2
        )

    def test_artifact_round_trip_and_render(self, tmp_path):
        payload = run_bench_batch(5, seed=2)
        path = str(tmp_path / "batch.json")
        write_batch_json(payload, path)
        loaded = load_batch_perf(path)
        assert loaded["files_per_sec"] == pytest.approx(
            payload["files_per_sec"]
        )
        assert "files/s" in render_batch_perf(loaded)

    def test_load_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "ompdart-load-perf/1"}))
        with pytest.raises(ValueError):
            load_batch_perf(str(path))

    def test_committed_baseline_is_loadable(self):
        baseline_path = os.path.join(
            os.path.dirname(__file__), os.pardir,
            "benchmarks", "batch_baseline.json",
        )
        baseline = load_batch_perf(baseline_path)
        assert baseline["count"] == 1000
        assert baseline["files_per_sec"] > 0

    def test_history_folds_batch_artifacts(self, tmp_path):
        from repro.report.history import load_artifact

        payload = {
            "schema": "ompdart-batch-perf/1",
            "count": 100,
            "seed": 0,
            "jobs": 1,
            "wall_s": 4.0,
            "files_per_sec": 25.0,
        }
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(payload))
        loaded = load_artifact(str(path))
        assert loaded is not None


class TestBenchBatchCLI:
    def test_cli_run_and_gate(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "perf.json")
        rc = main(["bench-batch", "--count", "6", "--seed", "1",
                   "--json", out])
        captured = capsys.readouterr()
        assert rc == 0
        assert "files/s" in captured.out
        assert os.path.exists(out)

    def test_cli_rejects_bad_args(self):
        from repro.cli import main

        assert main(["bench-batch", "--count", "0"]) == 2
        assert main(["bench-batch", "--count", "4", "--jobs", "0"]) == 2
        assert main(
            ["bench-batch", "--count", "4", "--tolerance", "-1"]
        ) == 2

    def test_cli_fails_on_baseline_regression(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "impossible.json"
        baseline.write_text(json.dumps({
            "schema": "ompdart-batch-perf/1",
            "count": 4, "ok_count": 4,
            "files_per_sec": 1e9,
        }))
        rc = main(["bench-batch", "--count", "4",
                   "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.err


# ---------------------------------------------------------------------------
# Batch dedup attribution in --report
# ---------------------------------------------------------------------------


def test_batch_report_attributes_shared_results(tmp_path, capsys):
    from repro.cli import main

    source = SMALL_KERNEL
    a = tmp_path / "a.c"
    b = tmp_path / "copy_of_a.c"
    a.write_text(source)
    b.write_text(source)
    out_dir = tmp_path / "out"
    rc = main(["batch", str(a), str(b), "-o", str(out_dir), "--report"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "deduplicated: identical content" in captured.out
    assert "1 unique input(s), 1 duplicate(s)" in captured.out


# ---------------------------------------------------------------------------
# CLI cold start (lazy imports)
# ---------------------------------------------------------------------------


_COLD_START_DRIVER = textwrap.dedent(
    """
    import sys, time

    start = time.perf_counter()
    from repro.cli import main

    try:
        main(["--version"])
    except SystemExit as exc:
        assert not exc.code, exc.code
    elapsed = time.perf_counter() - start

    heavy = [m for m in ("numpy", "repro.core.tool", "repro.runtime.interp",
                         "repro.service.core")
             if m in sys.modules]
    assert not heavy, f"cold start imported heavy modules: {heavy}"
    print(f"{elapsed:.4f}")
    """
)


def test_cli_cold_start_stays_light():
    """``ompdart --version`` must not pay for the simulator: no numpy,
    no tool facade, and a generous wall budget that still catches an
    accidental eager import of the heavy stack."""
    proc = subprocess.run(
        [sys.executable, "-c", _COLD_START_DRIVER],
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    # stdout carries the version banner first, then the timing line.
    elapsed = float(proc.stdout.strip().splitlines()[-1])
    # ~45ms on the dev box; 5s is pure accident insurance (a numpy
    # import alone would not trip it, the module check above does).
    assert elapsed < 5.0, elapsed


def test_parse_only_run_avoids_simulator_imports(tmp_path):
    """``ompdart FILE --dump-ast`` stays on the frontend-only path."""
    src = tmp_path / "input.c"
    src.write_text("int main() { return 0; }\n")
    driver = textwrap.dedent(
        f"""
        import sys
        from repro.cli import main

        rc = main([{str(src)!r}, "--dump-ast"])
        assert rc == 0, rc
        assert "numpy" not in sys.modules
        assert "repro.core.tool" not in sys.modules
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", driver],
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
