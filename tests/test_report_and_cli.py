"""Tests for the AST dump, report generators, and CLI."""

import pytest

from repro.frontend import dump_ast, parse_source
from repro.report import (
    format_bytes,
    render_barchart,
    render_table,
    table1,
    table2,
    table3,
    table5,
    table5_passes,
)


class TestDump:
    def test_listing5_shape(self):
        # Paper Listing 4 -> dump comparable to paper Listing 5.
        src = (
            "#define N 100\n"
            "int main() {\n"
            "  int a[N];\n"
            "  #pragma omp target teams distribute parallel for\n"
            "  for (int i = 0; i < N/2; i++) {\n"
            "    a[i] = i;\n"
            "  }\n"
            "  return 0;\n"
            "}\n"
        )
        text = dump_ast(parse_source(src, "l4.c"))
        for needle in (
            "ForStmt", "DeclStmt", "VarDecl", "IntegerLiteral",
            "BinaryOperator", "'<'", "postfix '++'", "ArraySubscriptExpr",
            "DeclRefExpr", "OMPTargetTeamsDistributeParallelForDirective",
        ):
            assert needle in text, needle

    def test_rails(self):
        text = dump_ast(parse_source("int main() { return 1 + 2; }", "t.c"))
        assert "|-" in text and "`-" in text

    def test_folded_macro_bound_visible(self):
        text = dump_ast(parse_source("#define N 4\nint a[N];", "t.c"))
        assert "int [4]" in text


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [["xx", "y"], ["x", "yyyyy"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_render_barchart(self):
        text = render_barchart("title", {"one": 1.0, "two": 2.0})
        assert text.startswith("title")
        assert text.count("#") > 0

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 kB"
        assert format_bytes(3 << 20) == "3.00 MB"
        assert format_bytes(5 << 30) == "5.00 GB"


class TestTables:
    def test_table1_has_12_rows(self):
        assert len(table1().splitlines()) == 14

    def test_table2_lists_firstprivate(self):
        assert "firstprivate()" in table2()

    def test_table3_lists_nine_apps(self):
        text = table3()
        assert text.count("HeCBench") == 5
        assert text.count("Rodinia") == 4

    def test_table5_average(self):
        text = table5({"a": 0.1, "b": 0.3})
        assert "0.200s" in text

    def test_table5_passes_breakdown(self):
        text = table5_passes({
            "a": {"parse": 0.1, "plan": 0.2},
            "b": {"parse": 0.3, "plan": 0.1},
        })
        assert "parse" in text and "plan" in text
        assert "0.400s" in text  # parse total
        assert "(total)" in text
        assert "0.350s" in text  # mean per benchmark


class TestCLI:
    def test_transform_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "in.c"
        src.write_text(
            "int a[4];\nint main() {\n"
            "  a[0] = 1;\n"
            "  #pragma omp target\n"
            "  for (int i = 0; i < 4; i++) a[i] += i;\n"
            "  return a[0];\n}\n"
        )
        out = tmp_path / "out.c"
        rc = main([str(src), "-o", str(out), "--report"])
        assert rc == 0
        assert "map(tofrom: a)" in out.read_text()

    def test_dump_ast_flag(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "in.c"
        src.write_text("int x;\n")
        assert main([str(src), "--dump-ast"]) == 0
        assert "VarDecl" in capsys.readouterr().out

    def test_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "bad.c"
        src.write_text(
            "int a[4];\nint main() {\n"
            "  #pragma omp target update from(a)\n  return 0;\n}\n"
        )
        assert main([str(src)]) == 1

    def test_missing_file(self):
        from repro.cli import main

        assert main(["/nonexistent/file.c"]) == 2

    def test_predefines(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "in.c"
        src.write_text("int a[SIZE];\nint main() { return 0; }\n")
        assert main([str(src), "-DSIZE=7", "--dump-ast"]) == 0
        assert "int [7]" in capsys.readouterr().out


class TestBenchHistory:
    """`ompdart bench-history`: the BENCH trajectory table."""

    @staticmethod
    def _artifact(tmp_path, name, wall):
        import json

        payload = {
            "schema": "ompdart-suite-perf/2",
            "results": {
                "a100-pcie4": {
                    "benchmarks": {
                        "xsbench": {
                            "variants": {
                                "unoptimized": {"sim_wall_s": wall * 2},
                                "ompdart": {"sim_wall_s": wall},
                                "expert": {"sim_wall_s": wall},
                            }
                        }
                    }
                }
            },
        }
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_trend_table_and_sparkline(self, tmp_path, capsys):
        from repro.cli import main

        old = self._artifact(tmp_path, "old.json", 0.08)
        new = self._artifact(tmp_path, "new.json", 0.02)
        assert main(["bench-history", old, new]) == 0
        out = capsys.readouterr().out
        assert "xsbench" in out and "(total)" in out
        assert "80.0" in out and "20.0" in out  # ms cells
        assert "█" in out and "▁" in out  # sparkline extremes

    def test_platform_filter_and_missing_cells(self, tmp_path, capsys):
        from repro.cli import main

        old = self._artifact(tmp_path, "old.json", 0.08)
        assert main(["bench-history", old, "--platform", "h100-sxm5"]) == 0
        assert "no sim_wall_s samples" in capsys.readouterr().out

    def test_empty_trajectory_is_friendly(self, tmp_path, capsys):
        """No artifacts at all (a fresh checkout's unmatched glob) and
        zero-byte placeholders both mean "nothing recorded yet", not an
        error."""
        from repro.cli import main

        assert main(["bench-history"]) == 0
        assert "no data points yet" in capsys.readouterr().out
        placeholder = tmp_path / "BENCH_empty.json"
        placeholder.write_text("")
        assert main(["bench-history", str(placeholder)]) == 0
        assert "no data points yet" in capsys.readouterr().out

    def test_empty_placeholder_skipped_among_real_artifacts(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        placeholder = tmp_path / "BENCH_empty.json"
        placeholder.write_text("\n")
        real = self._artifact(tmp_path, "real.json", 0.08)
        assert main(["bench-history", str(placeholder), real]) == 0
        out = capsys.readouterr().out
        assert "xsbench" in out and "80.0" in out

    def test_rejects_non_artifact(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        assert main(["bench-history", str(bad)]) == 2

    def test_rejects_unreadable(self, capsys):
        from repro.cli import main

        assert main(["bench-history", "/nonexistent/a.json"]) == 2

    def test_history_rows_union_and_totals(self, tmp_path):
        import json

        from repro.report.history import history_rows, load_artifact

        old = load_artifact(self._artifact(tmp_path, "old.json", 0.08))
        payload = json.loads(open(self._artifact(tmp_path, "n.json", 0.02)).read())
        payload["results"]["a100-pcie4"]["benchmarks"]["accuracy"] = {
            "variants": {"ompdart": {"sim_wall_s": 0.5}}
        }
        rows = history_rows([old, payload])
        keys = {(p, b, v) for p, b, v, _ in rows}
        assert ("a100-pcie4", "accuracy", "ompdart") in keys
        assert ("a100-pcie4", "(total)", "") in keys
        accuracy_row = next(
            r for r in rows if r[1] == "accuracy" and r[2] == "ompdart"
        )
        assert accuracy_row[3] == [None, 0.5]

    def test_sparkline_scaling(self):
        from repro.report.history import sparkline

        assert sparkline([1.0, 1.0]) == "▁▁"
        assert sparkline([0.0, None, 1.0]) == "▁ █"
        assert sparkline([]) == ""

    def test_total_row_respects_benchmark_filter(self, tmp_path):
        import json

        from repro.report.history import history_rows

        path = self._artifact(tmp_path, "two.json", 0.01)
        payload = json.loads(open(path).read())
        payload["results"]["a100-pcie4"]["benchmarks"]["bfs"] = {
            "variants": {"ompdart": {"sim_wall_s": 9.0}}
        }
        rows = history_rows([payload], benchmarks=["xsbench"])
        total = next(r for r in rows if r[1] == "(total)")
        assert total[3] == [pytest.approx(0.04)]  # bfs's 9.0s excluded


class TestCoverageReport:
    def test_figure_coverage_lists_strategies(self):
        from repro.report import figure_coverage
        from repro.suite.runner import run_benchmark

        runs = {"bfs": run_benchmark("bfs")}
        series, text = figure_coverage(runs)
        assert series["bfs"]["OMPDart"]["vector_strategy"] == "masked"
        assert series["bfs"]["OMPDart"]["fallback_reason"] is None
        assert "masked 14/14" in text

    def test_suite_cli_prints_coverage(self, capsys):
        from repro.cli import main

        assert main(["suite", "--benchmarks", "xsbench"]) == 0
        out = capsys.readouterr().out
        assert "vectorizer coverage 3/3 variant(s)" in out

    def test_suite_cli_coverage_with_no_vectorize(self, capsys):
        from repro.cli import main

        assert main(
            ["suite", "--benchmarks", "xsbench", "--no-vectorize", "--report"]
        ) == 0
        out = capsys.readouterr().out
        assert "vectorizer coverage 0/3 variant(s)" in out
        assert "vectorization disabled" in out
