"""Tests for CFG construction and the hybrid AST-CFG."""


from repro.cfg import (
    ASTCFG,
    EdgeLabel,
    NodeKind,
    build_astcfgs,
    build_cfg,
    cfg_to_dot,
    cfg_to_networkx,
)
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source


def cfg_for(src, name="main"):
    tu = parse_source(src, "t.c")
    fn = tu.lookup_function(name)
    return build_cfg(fn)


def astcfg_for(src, name="main"):
    tu = parse_source(src, "t.c")
    return ASTCFG(tu.lookup_function(name))


class TestLinearFlow:
    def test_empty_function(self):
        cfg = cfg_for("int main() { return 0; }")
        assert cfg.validate() == []
        # entry -> return -> exit
        assert cfg.entry.succ_nodes()[0].kind is NodeKind.STMT
        assert cfg.exit in cfg.entry.succ_nodes()[0].succ_nodes()

    def test_straight_line(self):
        cfg = cfg_for("int main() { int a = 1; a = 2; a = 3; return a; }")
        assert cfg.validate() == []
        # One path entry..exit through 4 statement nodes.
        node, count = cfg.entry, 0
        while node is not cfg.exit:
            assert len(node.successors) == 1
            node = node.succ_nodes()[0]
            count += 1
        assert count == 5  # 4 stmts + exit hop

    def test_decl_nodes_marked(self):
        cfg = cfg_for("int main() { int a = 1; return a; }")
        kinds = [n.kind for n in cfg.nodes]
        assert NodeKind.DECL in kinds


class TestBranches:
    def test_if_has_true_false_edges(self):
        cfg = cfg_for("int main() { int x = 1; if (x) x = 2; return x; }")
        preds = [n for n in cfg.nodes if n.kind is NodeKind.PRED]
        assert len(preds) == 1
        labels = {e.label for e in preds[0].successors}
        assert labels == {EdgeLabel.TRUE, EdgeLabel.FALSE}

    def test_if_else_join(self):
        cfg = cfg_for(
            "int main() { int x = 1; if (x) x = 2; else x = 3; return x; }"
        )
        assert cfg.validate() == []
        ret = [n for n in cfg.nodes if isinstance(n.ast, A.ReturnStmt)][0]
        assert len(ret.predecessors) == 2

    def test_switch_case_edges(self):
        src = """
        int main() {
          int x = 1, y = 0;
          switch (x) {
            case 1: y = 1; break;
            case 2: y = 2; break;
            default: y = 9;
          }
          return y;
        }
        """
        cfg = cfg_for(src)
        assert cfg.validate() == []
        pred = [n for n in cfg.nodes if n.kind is NodeKind.PRED][0]
        labels = [e.label for e in pred.successors]
        assert labels.count(EdgeLabel.CASE) == 2
        assert labels.count(EdgeLabel.DEFAULT) == 1

    def test_switch_fallthrough(self):
        src = """
        int main() {
          int x = 1, y = 0;
          switch (x) {
            case 1: y = 1;
            case 2: y = 2; break;
          }
          return y;
        }
        """
        cfg = cfg_for(src)
        assert cfg.validate() == []
        # the `y = 2` node has two predecessors: fallthrough + case edge
        y2 = [
            n for n in cfg.nodes
            if isinstance(n.ast, A.ExprStmt)
            and isinstance(n.ast.expr, A.BinaryOperator)
            and isinstance(n.ast.expr.rhs, A.IntegerLiteral)
            and n.ast.expr.rhs.value == 2
        ][0]
        assert len(y2.predecessors) == 2

    def test_switch_without_default_can_skip(self):
        src = """
        int main() {
          int x = 5, y = 0;
          switch (x) { case 1: y = 1; break; }
          return y;
        }
        """
        cfg = cfg_for(src)
        pred = [n for n in cfg.nodes if n.kind is NodeKind.PRED][0]
        ret = [n for n in cfg.nodes if isinstance(n.ast, A.ReturnStmt)][0]
        assert ret in pred.succ_nodes()


class TestLoops:
    def test_for_loop_back_edge(self):
        cfg = cfg_for("int main() { for (int i = 0; i < 3; i++) {} return 0; }")
        assert cfg.validate() == []
        back = [e for e in cfg.edges if e.is_back_edge]
        assert len(back) == 1
        assert len(cfg.loops) == 1
        assert cfg.loops[0].back_edge is back[0]

    def test_for_loop_head_is_pred(self):
        cfg = cfg_for("int main() { for (int i = 0; i < 3; i++) {} return 0; }")
        loop = cfg.loops[0]
        assert loop.head is not None
        assert loop.head.kind is NodeKind.PRED
        assert isinstance(loop.head.ast, A.ForStmt)

    def test_while_loop(self):
        cfg = cfg_for("int main() { int i = 0; while (i < 3) i++; return i; }")
        assert cfg.validate() == []
        assert len(cfg.loops) == 1
        assert len([e for e in cfg.edges if e.is_back_edge]) == 1

    def test_do_loop_body_precedes_cond(self):
        cfg = cfg_for("int main() { int i = 0; do { i++; } while (i < 3); return i; }")
        assert cfg.validate() == []
        loop = cfg.loops[0]
        # do-while back edge goes head(true) -> body entry
        assert loop.back_edge.src is loop.head
        assert loop.back_edge.label is EdgeLabel.TRUE

    def test_nested_loops_parenting(self):
        src = """
        int main() {
          for (int i = 0; i < 2; i++)
            for (int j = 0; j < 2; j++) { int x = 0; }
          return 0;
        }
        """
        cfg = cfg_for(src)
        assert len(cfg.loops) == 2
        inner = [lp for lp in cfg.loops if lp.parent is not None]
        assert len(inner) == 1
        assert inner[0].depth == 2

    def test_loop_depth_marking(self):
        src = """
        int main() {
          int a = 0;
          for (int i = 0; i < 2; i++) { a = 1; }
          return a;
        }
        """
        cfg = cfg_for(src)
        body_assign = [
            n for n in cfg.nodes
            if isinstance(n.ast, A.ExprStmt) and n.loop_depth == 1
        ]
        assert body_assign

    def test_break_exits_loop(self):
        cfg = cfg_for("int main() { for (;;) { break; } return 0; }")
        assert cfg.validate() == []
        ret = [n for n in cfg.nodes if isinstance(n.ast, A.ReturnStmt)][0]
        brk = [n for n in cfg.nodes if isinstance(n.ast, A.BreakStmt)][0]
        assert ret in brk.succ_nodes()

    def test_continue_in_while_is_back_edge(self):
        cfg = cfg_for(
            "int main() { int i = 0; while (i < 9) { i++; continue; } return i; }"
        )
        cont = [n for n in cfg.nodes if isinstance(n.ast, A.ContinueStmt)][0]
        assert cont.successors[0].is_back_edge

    def test_continue_in_for_goes_through_increment(self):
        src = "int main() { for (int i = 0; i < 9; i++) { continue; } return 0; }"
        cfg = cfg_for(src)
        cont = [n for n in cfg.nodes if isinstance(n.ast, A.ContinueStmt)][0]
        succ = cont.succ_nodes()[0]
        assert isinstance(succ.ast, A.ExprStmt)  # the synthesized i++ node

    def test_topological_order_ignores_back_edges(self):
        cfg = cfg_for("int main() { for (int i = 0; i < 3; i++) {} return 0; }")
        order = cfg.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in cfg.edges:
            if not e.is_back_edge and e.src in pos and e.dst in pos:
                assert pos[e.src] < pos[e.dst], f"forward edge {e!r} out of order"


class TestOffloadMarking:
    SRC = """
    int a[10];
    int main() {
      a[0] = 1;
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 10; i++) {
        a[i] = i;
      }
      a[1] = 2;
      return 0;
    }
    """

    def test_kernel_body_nodes_offloaded(self):
        cfg = cfg_for(self.SRC)
        offloaded = cfg.offloaded_nodes()
        assert offloaded
        for node in offloaded:
            assert node.kernel is not None
            assert node.kernel.directive_kind == "target teams distribute parallel for"

    def test_host_nodes_not_offloaded(self):
        cfg = cfg_for(self.SRC)
        host_assigns = [
            n for n in cfg.nodes
            if isinstance(n.ast, A.ExprStmt) and not n.offloaded
        ]
        assert len(host_assigns) == 2

    def test_directive_node_exists(self):
        cfg = cfg_for(self.SRC)
        directives = [n for n in cfg.nodes if n.kind is NodeKind.DIRECTIVE]
        assert len(directives) == 1

    def test_loop_inside_kernel_offloaded(self):
        cfg = cfg_for(self.SRC)
        loop = cfg.loops[0]
        assert loop.head.offloaded


class TestASTCFG:
    def test_bidirectional_links(self):
        astcfg = astcfg_for(self.__class__.SRC) if hasattr(self.__class__, "SRC") \
            else astcfg_for(TestOffloadMarking.SRC)
        for node in astcfg.cfg.nodes:
            if node.ast is not None:
                assert astcfg.cfg_node_of(node.ast) is not None

    def test_cfg_node_containing_expression(self):
        astcfg = astcfg_for(TestOffloadMarking.SRC)
        subs = list(astcfg.function.walk_instances(A.ArraySubscriptExpr))
        for sub in subs:
            node = astcfg.cfg_node_containing(sub)
            assert node is not None

    def test_kernel_directives_in_source_order(self):
        src = """
        int a[4];
        int main() {
          #pragma omp target
          for (int i = 0; i < 4; i++) a[i] = i;
          #pragma omp target
          for (int i = 0; i < 4; i++) a[i] *= 2;
          return 0;
        }
        """
        astcfg = astcfg_for(src)
        kernels = astcfg.kernel_directives()
        assert len(kernels) == 2
        assert kernels[0].begin_offset < kernels[1].begin_offset

    def test_data_management_detected(self):
        src = """
        int a[4];
        int main() {
          #pragma omp target update from(a)
          return 0;
        }
        """
        astcfg = astcfg_for(src)
        assert len(astcfg.data_management_directives()) == 1

    def test_call_sites(self):
        src = """
        int helper(int x) { return x + 1; }
        int main() { return helper(helper(1)); }
        """
        astcfg = astcfg_for(src)
        calls = astcfg.call_sites()
        assert len(calls) == 2

    def test_build_astcfgs_skips_prototypes(self):
        src = "int f(int);\nint main() { return 0; }"
        tu = parse_source(src, "t.c")
        graphs = build_astcfgs(tu)
        assert set(graphs) == {"main"}


class TestExports:
    def test_dot_output(self):
        cfg = cfg_for("int main() { if (1) return 1; return 0; }")
        dot = cfg_to_dot(cfg)
        assert dot.startswith("digraph")
        assert "true" in dot and "false" in dot

    def test_dot_marks_back_edges_dashed(self):
        cfg = cfg_for("int main() { for (int i = 0; i < 2; i++) {} return 0; }")
        assert "style=dashed" in cfg_to_dot(cfg)

    def test_networkx_roundtrip(self):
        cfg = cfg_for("int main() { for (int i = 0; i < 2; i++) {} return 0; }")
        g = cfg_to_networkx(cfg)
        assert g.number_of_nodes() == len(cfg.nodes)
        assert g.number_of_edges() == len(cfg.edges)

    def test_networkx_cycle_matches_loops(self):
        import networkx as nx

        cfg = cfg_for("int main() { while (1) { break; } return 0; }")
        g = cfg_to_networkx(cfg)
        # removing back edges yields a DAG
        fwd = nx.DiGraph(
            (u, v) for u, v, d in g.edges(data=True) if not d["back"]
        )
        assert nx.is_directed_acyclic_graph(fwd)
