"""Unit tests for the mini-C lexer."""

import pytest

from repro.diagnostics import ParseError
from repro.frontend.lexer import tokenize
from repro.frontend.source import SourceBuffer
from repro.frontend.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENTIFIER
        assert tok.text == "hello"

    def test_identifier_with_underscore_and_digits(self):
        (tok,) = tokenize("_foo_42")[:-1]
        assert tok.kind is TokenKind.IDENTIFIER

    def test_keywords_are_classified(self):
        for kw in ("int", "for", "while", "return", "const", "struct"):
            (tok,) = tokenize(kw)[:-1]
            assert tok.kind is TokenKind.KEYWORD, kw

    def test_adjacent_tokens(self):
        assert kinds("a+b") == [
            TokenKind.IDENTIFIER, TokenKind.PLUS, TokenKind.IDENTIFIER,
        ]


class TestNumericLiterals:
    def test_decimal_int(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind is TokenKind.INT_LITERAL
        assert tok.value == 42

    def test_int_at_end_of_buffer_is_not_float(self):
        # Regression: empty lookahead must not satisfy `in "fF"`.
        (tok,) = tokenize("100")[:-1]
        assert tok.kind is TokenKind.INT_LITERAL
        assert tok.value == 100

    def test_hex_int(self):
        (tok,) = tokenize("0xFF")[:-1]
        assert tok.value == 255

    def test_int_suffixes(self):
        for text in ("7u", "7U", "7L", "7UL", "7ull"):
            (tok,) = tokenize(text)[:-1]
            assert tok.kind is TokenKind.INT_LITERAL
            assert tok.value == 7

    def test_float_basic(self):
        (tok,) = tokenize("3.25")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 3.25

    def test_float_exponent(self):
        (tok,) = tokenize("1e3")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 1000.0

    def test_float_negative_exponent(self):
        (tok,) = tokenize("2.5e-2")[:-1]
        assert tok.value == pytest.approx(0.025)

    def test_float_f_suffix(self):
        (tok,) = tokenize("1.0f")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL

    def test_int_with_f_suffix_is_float(self):
        (tok,) = tokenize("2f ")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 2.0

    def test_leading_dot_float(self):
        (tok,) = tokenize(".5")[:-1]
        assert tok.kind is TokenKind.FLOAT_LITERAL
        assert tok.value == 0.5


class TestStringsAndChars:
    def test_string_literal(self):
        (tok,) = tokenize('"hi"')[:-1]
        assert tok.kind is TokenKind.STRING_LITERAL
        assert tok.value == "hi"

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\nb\t\\"')[:-1]
        assert tok.value == "a\nb\t\\"

    def test_char_literal(self):
        (tok,) = tokenize("'x'")[:-1]
        assert tok.kind is TokenKind.CHAR_LITERAL
        assert tok.value == ord("x")

    def test_char_escape(self):
        (tok,) = tokenize(r"'\n'")[:-1]
        assert tok.value == ord("\n")

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize('"oops')


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<<=", TokenKind.LESSLESSEQUAL),
            (">>=", TokenKind.GREATERGREATEREQUAL),
            ("<<", TokenKind.LESSLESS),
            ("<=", TokenKind.LESSEQUAL),
            ("<", TokenKind.LESS),
            ("->", TokenKind.ARROW),
            ("--", TokenKind.MINUSMINUS),
            ("-", TokenKind.MINUS),
            ("...", TokenKind.ELLIPSIS),
            ("==", TokenKind.EQUALEQUAL),
            ("=", TokenKind.EQUAL),
        ],
    )
    def test_maximal_munch(self, text, kind):
        (tok,) = tokenize(text)[:-1]
        assert tok.kind is kind

    def test_munch_sequence(self):
        assert kinds("a<<=b") == [
            TokenKind.IDENTIFIER, TokenKind.LESSLESSEQUAL, TokenKind.IDENTIFIER,
        ]

    def test_arrow_vs_minus(self):
        assert kinds("p->x - y") == [
            TokenKind.IDENTIFIER, TokenKind.ARROW, TokenKind.IDENTIFIER,
            TokenKind.MINUS, TokenKind.IDENTIFIER,
        ]


class TestCommentsAndTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* 1\n2\n3 */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            tokenize("a /* never ends")

    def test_offsets_unaffected_by_comments(self):
        toks = tokenize("ab /*c*/ de")
        assert toks[0].location.offset == 0
        assert toks[1].location.offset == 9


class TestDirectives:
    def test_pragma_token(self):
        toks = tokenize("#pragma omp target\nint x;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert "omp target" in str(toks[0].value)

    def test_pragma_with_continuation(self):
        toks = tokenize("#pragma omp target \\\n  map(to: a)\nint x;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert "map(to: a)" in str(toks[0].value)

    def test_hash_mid_line_is_error(self):
        with pytest.raises(ParseError):
            tokenize("int x; # pragma")

    def test_directive_strips_line_comment(self):
        toks = tokenize("#pragma omp target // note\nint x;")
        assert "note" not in str(toks[0].value)


class TestLocations:
    def test_line_and_column(self):
        toks = tokenize("int x;\n  y = 1;")
        y = [t for t in toks if t.text == "y"][0]
        assert (y.location.line, y.location.column) == (2, 3)

    def test_source_buffer_line_col_roundtrip(self):
        buf = SourceBuffer("ab\ncd\nef")
        assert buf.line_col(0) == (1, 1)
        assert buf.line_col(3) == (2, 1)
        assert buf.line_col(7) == (3, 2)

    def test_line_text(self):
        buf = SourceBuffer("ab\ncd\n")
        assert buf.line_text(2) == "cd"

    def test_end_offset(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.end_offset == 5
