"""Tests for loop bounds / access pattern analysis and Algorithm 1 (IV-E)."""

import pytest

from repro.analysis import (
    Interval,
    eval_interval,
    find_indexing_var,
    find_update_insert_loc,
    infer_access_range,
    loop_bounds,
)
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source


def first_for(src):
    tu = parse_source(src, "t.c")
    return next(tu.walk_instances(A.ForStmt))


def all_fors(src):
    tu = parse_source(src, "t.c")
    return list(tu.walk_instances(A.ForStmt)), tu


def loop_src(header, body="a[i] = i;"):
    return f"int a[256]; int n;\nint main() {{ int i; for ({header}) {{ {body} }} return 0; }}"


class TestIndexingVar:
    @pytest.mark.parametrize(
        "header",
        ["int i = 0; i < 8; i++", "int i = 0; i < 8; ++i",
         "int i = 8; i > 0; i--", "int i = 0; i < 8; i += 2",
         "int i = 0; i < 8; i = i + 1", "int i = 8; i >= 0; i = i - 2"],
    )
    def test_recognized_shapes(self, header):
        assert find_indexing_var(first_for(loop_src(header, "a[0] = 0;"))) == "i"

    def test_missing_increment(self):
        assert find_indexing_var(first_for(loop_src("int i = 0; i < 8;", "i++;"))) is None

    def test_complex_increment_rejected(self):
        src = loop_src("int i = 0; i < 8; i = i * 2", "a[0] = 0;")
        assert find_indexing_var(first_for(src)) is None


class TestLoopBounds:
    def test_paper_listing4(self):
        # for (int i = 0; i < 100/2; i++) -> [0, 49]
        src = loop_src("int i = 0; i < 100/2; i++")
        b = loop_bounds(first_for(src))
        assert (b.lower, b.upper, b.step) == (0, 49, 1)
        assert b.trip_count == 50

    def test_le_bound(self):
        b = loop_bounds(first_for(loop_src("int i = 1; i <= 16; i++")))
        assert (b.lower, b.upper) == (1, 16)
        assert b.trip_count == 16

    def test_strided(self):
        b = loop_bounds(first_for(loop_src("int i = 0; i < 10; i += 3")))
        assert b.trip_count == 4  # 0, 3, 6, 9

    def test_decreasing(self):
        b = loop_bounds(first_for(loop_src("int i = 9; i >= 0; i--", "a[i] = i;")))
        assert (b.lower, b.upper, b.step) == (0, 9, -1)
        assert b.trip_count == 10

    def test_decreasing_gt(self):
        b = loop_bounds(first_for(loop_src("int i = 9; i > 0; i--", "a[i] = i;")))
        assert (b.lower, b.upper) == (1, 9)

    def test_reversed_comparison(self):
        # `8 > i` normalizes to `i < 8`
        b = loop_bounds(first_for(loop_src("int i = 0; 8 > i; i++")))
        assert (b.lower, b.upper) == (0, 7)

    def test_symbolic_bound_gives_none_upper(self):
        b = loop_bounds(first_for(loop_src("int i = 0; i < n; i++")))
        assert b is not None
        assert b.upper is None
        assert b.trip_count is None

    def test_assignment_init_form(self):
        b = loop_bounds(first_for(loop_src("i = 2; i < 8; i++")))
        assert b.lower == 2

    def test_macro_folded_bound(self):
        src = "#define N 32\nint a[N];\nint main() { for (int i = 0; i < N; i++) a[i] = i; return 0; }"
        b = loop_bounds(first_for(src))
        assert b.upper == 31


class TestIntervalArithmetic:
    ENV = {"i": Interval(0, 9), "j": Interval(1, 4)}

    def parse_expr(self, text):
        src = f"int a[512]; int i; int j;\nint main() {{ int q = a[{text}]; return q; }}"
        tu = parse_source(src, "t.c")
        sub = next(tu.walk_instances(A.ArraySubscriptExpr))
        return sub.index

    @pytest.mark.parametrize(
        "text,lo,hi",
        [
            ("i", 0, 9),
            ("i + 1", 1, 10),
            ("i - j", -4, 8),
            ("i * 4", 0, 36),
            ("i * 4 + j", 1, 40),
            ("2 * i + 3", 3, 21),
            ("i / 2", 0, 4),
            ("-i", -9, 0),
        ],
    )
    def test_affine(self, text, lo, hi):
        iv = eval_interval(self.parse_expr(text), self.ENV)
        assert (iv.lo, iv.hi) == (lo, hi)

    def test_unknown_var_gives_none(self):
        assert eval_interval(self.parse_expr("k + 1"), self.ENV) is None

    def test_mod_wraps(self):
        iv = eval_interval(self.parse_expr("i % 4"), self.ENV)
        assert (iv.lo, iv.hi) == (0, 3)

    def test_interval_validates(self):
        with pytest.raises(ValueError):
            Interval(3, 1)


class TestAccessRange:
    def test_nested_loop_range(self):
        src = """
        double ps[128];
        int main() {
          for (int j = 1; j <= 16; j++)
            for (int k = 0; k < 8; k++) {
              double s = ps[k * 16 + j - 1];
            }
          return 0;
        }
        """
        loops, tu = all_fors(src)
        sub = next(tu.walk_instances(A.ArraySubscriptExpr))
        rng = infer_access_range(sub, loops)
        assert (rng.lo, rng.hi) == (0, 127)

    def test_partial_range_detected(self):
        src = """
        double a[256];
        int main() {
          for (int i = 0; i < 64; i++) { double s = a[i]; }
          return 0;
        }
        """
        loops, tu = all_fors(src)
        sub = next(tu.walk_instances(A.ArraySubscriptExpr))
        rng = infer_access_range(sub, loops)
        assert (rng.lo, rng.hi) == (0, 63)


class TestAlgorithm1:
    def listing6(self):
        src = """
        double partial_sum[128];
        int main() {
          for (int j = 1; j <= 16; j++) {
            double sum = 0.0;
            for (int k = 0; k < 8; k++) {
              sum += partial_sum[k * 16 + j - 1];
            }
          }
          return 0;
        }
        """
        loops, tu = all_fors(src)
        sub = next(tu.walk_instances(A.ArraySubscriptExpr))
        return sub, loops

    def test_listing6_outer_loop(self):
        # Both j and k index partial_sum -> position is the outermost loop.
        sub, loops = self.listing6()
        pos = find_update_insert_loc(sub, list(reversed(loops)), None)
        assert pos is loops[0]  # the j loop

    def test_loc_lim_blocks_hoist(self):
        sub, loops = self.listing6()
        # pretend the preceding kernel ends between the two loops
        loc_lim = loops[1].begin_offset - 1
        pos = find_update_insert_loc(sub, list(reversed(loops)), loc_lim)
        assert pos is loops[1]  # cannot move above the inner loop

    def test_non_indexing_loop_skipped(self):
        src = """
        double a[64];
        int main() {
          for (int t = 0; t < 4; t++) {
            for (int i = 0; i < 64; i++) {
              double s = a[i];
            }
          }
          return 0;
        }
        """
        loops, tu = all_fors(src)
        sub = next(tu.walk_instances(A.ArraySubscriptExpr))
        pos = find_update_insert_loc(sub, list(reversed(loops)), None)
        # only i indexes a -> position is the i loop, not the t loop
        assert pos is loops[1]

    def test_no_indexing_loops_returns_access(self):
        src = """
        double a[64];
        int main() {
          for (int t = 0; t < 4; t++) {
            double s = a[0];
          }
          return 0;
        }
        """
        loops, tu = all_fors(src)
        sub = next(tu.walk_instances(A.ArraySubscriptExpr))
        pos = find_update_insert_loc(sub, list(reversed(loops)), None)
        assert pos is sub
