"""Typed per-pass artifact schemas: compact spills, versioned keys,
legacy readability, and cache-directory migration."""

import pickle
import zlib

import pytest

from repro.pipeline import artifacts as AR
from repro.pipeline.cache import MISS, ArtifactCache
from repro.pipeline.context import ToolOptions
from repro.pipeline.manager import PassManager

SRC = """
int a[64];
void work() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 64; i++) a[i] = a[i] * 2;
}
int main() { a[0] = 3; work(); return a[0]; }
"""

PASS_NAMES = (
    "preprocess", "parse", "codegen", "constraints", "effects", "cfg",
    "plan", "rewrite",
)


@pytest.fixture(scope="module")
def ctx():
    return PassManager().run(SRC, "t.c")


class TestSchemas:
    def test_every_pass_has_a_registered_schema(self):
        for name in PASS_NAMES:
            schema = AR.schema_for(name)
            assert schema.pass_name == name
            assert schema.version >= 2

    def test_unknown_pass_gets_default_pickle_schema(self):
        assert AR.schema_for("custom") is AR.DEFAULT_SCHEMA

    def test_round_trip_all_passes(self, ctx):
        deps = dict(ctx.artifacts)
        for name in PASS_NAMES:
            raw = AR.encode_spill(name, ctx.artifacts[name])
            assert AR.is_compact_spill(raw)
            back = AR.decode_spill(raw, name, deps)
            assert type(back) is type(ctx.artifacts[name])
        assert AR.decode_spill(
            AR.encode_spill("rewrite", ctx.artifacts["rewrite"]), "rewrite"
        ) == ctx.artifacts["rewrite"]

    def test_analysis_payloads_drop_the_embedded_tu(self, ctx):
        """effects/cfg/plan no longer spill a whole AST copy each."""
        for name in ("effects", "cfg", "plan"):
            compact = len(AR.encode_spill(name, ctx.artifacts[name]))
            legacy = AR.legacy_size(ctx.artifacts[name])
            assert compact < legacy, name
        # effects is almost pure reference payload: a small fraction.
        assert len(
            AR.encode_spill("effects", ctx.artifacts["effects"])
        ) < AR.legacy_size(ctx.artifacts["effects"]) / 3

    def test_decoded_refs_share_node_identity_with_parse(self, ctx):
        parse2 = AR.decode_spill(
            AR.encode_spill("parse", ctx.artifacts["parse"]), "parse"
        )
        deps = {"parse": parse2}
        effects = AR.decode_spill(
            AR.encode_spill("effects", ctx.artifacts["effects"]),
            "effects", deps,
        )
        assert effects.tu is parse2
        cfg = AR.decode_spill(
            AR.encode_spill("cfg", ctx.artifacts["cfg"]), "cfg", deps
        )
        nodes = set(map(id, parse2.walk()))
        for astcfg in cfg.values():
            assert id(astcfg.function) in nodes

    def test_ref_payload_without_parse_dep_raises(self, ctx):
        raw = AR.encode_spill("effects", ctx.artifacts["effects"])
        with pytest.raises(AR.ArtifactDecodeError):
            AR.decode_spill(raw, "effects")

    def test_non_ast_artifact_under_refs_schema_is_self_contained(self):
        raw = AR.encode_spill("effects", {"synthetic": [1, 2, 3]})
        assert AR.decode_spill(raw, "effects") == {"synthetic": [1, 2, 3]}

    def test_find_translation_unit(self, ctx):
        tu = ctx.artifacts["parse"]
        assert AR.find_translation_unit(tu) is tu
        assert AR.find_translation_unit(ctx.artifacts["effects"]) is tu
        assert AR.find_translation_unit(ctx.artifacts["plan"]) is tu
        assert AR.find_translation_unit({"no": "ast"}) is None

    def test_version_mismatch_is_a_decode_error(self, ctx, monkeypatch):
        raw = AR.encode_spill("rewrite", ctx.artifacts["rewrite"])
        bumped = AR.ArtifactSchema(
            "rewrite", AR.schema_version("rewrite") + 1, "text",
            AR._encode_text, AR._decode_text,
        )
        monkeypatch.setitem(AR.SCHEMAS, "rewrite", bumped)
        with pytest.raises(AR.ArtifactDecodeError):
            AR.decode_spill(raw, "rewrite")

    def test_corrupt_container_is_a_decode_error(self):
        with pytest.raises(AR.ArtifactDecodeError):
            AR.decode_spill(AR.MAGIC + b"garbage", "parse")
        with pytest.raises(AR.ArtifactDecodeError):
            AR.decode_spill(b"neither magic nor pickle", "parse")


class TestVersionedKeys:
    def test_schema_version_folds_into_storage_key(self):
        key = "abc123"
        assert AR.storage_key("parse", key).startswith(key)
        assert AR.storage_key("parse", key) != AR.storage_key("custom", key)

    def test_version_bump_invalidates_cached_artifacts(
        self, tmp_path, monkeypatch
    ):
        """Incompatible spills are never looked up, not mis-unpickled."""
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("rewrite", "k", "old-shape")
        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.get("rewrite", "k") == "old-shape"
        bumped = AR.ArtifactSchema(
            "rewrite", AR.schema_version("rewrite") + 1, "text",
            AR._encode_text, AR._decode_text,
        )
        monkeypatch.setitem(AR.SCHEMAS, "rewrite", bumped)
        stale = ArtifactCache(disk_dir=tmp_path)
        assert stale.get("rewrite", "k") is MISS

    def test_memory_keys_are_versioned_too(self, monkeypatch):
        cache = ArtifactCache()
        cache.put("rewrite", "k", "cached")
        bumped = AR.ArtifactSchema(
            "rewrite", AR.schema_version("rewrite") + 1, "text",
            AR._encode_text, AR._decode_text,
        )
        monkeypatch.setitem(AR.SCHEMAS, "rewrite", bumped)
        assert cache.get("rewrite", "k") is MISS


def _write_legacy_spills(manager, cache_dir, source, filename):
    """Spill one input's artifacts exactly as the PR 3 format did."""
    ctx = manager.run(source, filename)
    key = manager.input_key(source, filename, ToolOptions())
    for name, artifact in ctx.artifacts.items():
        raw = zlib.compress(pickle.dumps(artifact, protocol=5), 6)
        (cache_dir / f"{name}-{key}.pkl").write_bytes(raw)
    return key, ctx


class TestLegacyAndMigration:
    def test_legacy_whole_object_spills_still_load(self, tmp_path):
        manager = PassManager()
        key, ctx = _write_legacy_spills(manager, tmp_path, SRC, "t.c")
        cold = ArtifactCache(disk_dir=tmp_path)
        assert cold.get("rewrite", key) == ctx.artifacts["rewrite"]
        # Even analysis artifacts load (self-contained legacy pickles).
        effects = cold.get("effects", key)
        assert effects is not MISS
        assert effects.summaries.keys() == ctx.artifacts["effects"].summaries.keys()

    def test_legacy_plain_pickle_spills_still_load(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        path = cache._disk_path("parse", "old")
        with open(path, "wb") as fh:
            pickle.dump({"legacy": True}, fh)
        assert cache.get("parse", "old") == {"legacy": True}

    def test_migrate_rewrites_legacy_spills_compact(self, tmp_path):
        manager = PassManager()
        key, ctx = _write_legacy_spills(manager, tmp_path, SRC, "t.c")
        before = sum(p.stat().st_size for p in tmp_path.glob("*.pkl"))
        report = AR.migrate_spills(tmp_path)
        assert report.migrated == len(ctx.artifacts)
        assert report.failed == 0
        assert report.bytes_before == before
        assert report.bytes_saved > 0
        assert "saved" in report.render()
        assert not list(tmp_path.glob("*.pkl"))
        assert len(list(tmp_path.glob("*.art"))) == report.migrated
        # A pipeline over the migrated directory answers from cache.
        fresh = PassManager(cache=ArtifactCache(disk_dir=tmp_path))
        ctx2 = fresh.run(SRC, "t.c")
        assert set(ctx2.cache_events.values()) == {"hit"}
        assert ctx2.artifact("rewrite") == ctx.artifacts["rewrite"]

    def test_migrate_skips_compact_and_counts_unreadable(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("rewrite", "k", "already compact")
        (tmp_path / "parse-broken.pkl").write_bytes(b"not a pickle")
        report = AR.migrate_spills(tmp_path)
        assert report.migrated == 0
        assert report.failed == 1

    def test_batch_cli_migrate(self, tmp_path, capsys):
        from repro.cli import main

        manager = PassManager()
        _write_legacy_spills(manager, tmp_path, SRC, "t.c")
        assert main(["batch", "--cache-dir", str(tmp_path), "--migrate"]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out and "saved" in out
        assert not list(tmp_path.glob("*.pkl"))

    def test_batch_cli_migrate_requires_cache_dir(self, capsys):
        from repro.cli import main

        assert main(["batch", "--migrate"]) == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestPrewarmCompact:
    def test_prewarm_decodes_ref_spills_against_group_parse(self, tmp_path):
        manager = PassManager(cache=ArtifactCache(disk_dir=tmp_path))
        ctx = manager.run(SRC, "t.c")
        cold = ArtifactCache(disk_dir=tmp_path)
        loaded = cold.prewarm()
        assert loaded == len(list(tmp_path.glob("*.art")))
        # Warmed analysis artifacts resolve against the warmed parse.
        key = manager.input_key(SRC, "t.c", ToolOptions())
        parse = cold.get("parse", key)
        effects = cold.get("effects", key)
        assert effects.tu is parse
        assert cold.get("rewrite", key) == ctx.artifact("rewrite")
        assert all(s.disk_bytes_read == 0 for s in cold.stats.values())

    def test_prewarm_skips_ref_spills_without_parse(self, tmp_path):
        manager = PassManager(cache=ArtifactCache(disk_dir=tmp_path))
        manager.run(SRC, "t.c")
        parse_files = list(tmp_path.glob("parse-*.art"))
        assert len(parse_files) == 1
        parse_files[0].unlink()
        cold = ArtifactCache(disk_dir=tmp_path)
        loaded = cold.prewarm()
        # Reference spills (effects/cfg/plan) cannot anchor: skipped.
        assert loaded == len(list(tmp_path.glob("*.art"))) - 3
