"""Tests for the closure-compiling interpreter."""

import pytest

from repro.runtime import SimulationError, run_simulation


def run(src, **kw):
    return run_simulation(src, "t.c", **kw)


def out(src, **kw):
    return run(src, **kw).output


class TestScalarsAndArithmetic:
    def test_return_code(self):
        assert run("int main() { return 7; }").return_code == 7

    def test_arithmetic(self):
        assert "x=17" in out(
            'int main() { int x = 3 + 2 * 7; printf("x=%d", x); return 0; }'
        )

    def test_c_integer_division_truncates_toward_zero(self):
        assert "q=-2" in out(
            'int main() { int q = -7 / 3; printf("q=%d", q); return 0; }'
        )

    def test_c_modulo_sign(self):
        assert "r=-1" in out(
            'int main() { int r = -7 % 3; printf("r=%d", r); return 0; }'
        )

    def test_float_math(self):
        assert "s=3.00" in out(
            'int main() { double s = sqrt(9.0); printf("s=%.2f", s); return 0; }'
        )

    def test_int_coercion_on_store(self):
        assert "v=2" in out(
            'int main() { int v = 2.9; printf("v=%d", v); return 0; }'
        )

    def test_ternary_and_logic(self):
        src = """
        int main() {
          int a = 5, b = 0;
          int c = (a > 3 && !b) ? 10 : 20;
          printf("%d", c);
          return 0;
        }
        """
        assert out(src) == "10"

    def test_shortcircuit_evaluation(self):
        src = """
        int g;
        int bump() { g += 1; return 1; }
        int main() { int x = 0 && bump(); printf("%d %d", g, x); return 0; }
        """
        assert out(src) == "0 0"

    def test_bitwise_ops(self):
        src = 'int main() { printf("%d", (12 & 10) | (1 << 4)); return 0; }'
        assert out(src) == "24"

    def test_increment_semantics(self):
        src = """
        int main() {
          int i = 5;
          int a = i++;
          int b = ++i;
          printf("%d %d %d", a, b, i);
          return 0;
        }
        """
        assert out(src) == "5 7 7"


class TestControlFlow:
    def test_for_loop(self):
        src = 'int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; printf("%d", s); return 0; }'
        assert out(src) == "55"

    def test_while_and_break(self):
        src = """
        int main() {
          int i = 0;
          while (1) { i++; if (i == 4) break; }
          printf("%d", i);
          return 0;
        }
        """
        assert out(src) == "4"

    def test_continue(self):
        src = """
        int main() {
          int s = 0;
          for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; }
          printf("%d", s);
          return 0;
        }
        """
        assert out(src) == "20"

    def test_do_while(self):
        src = 'int main() { int i = 0; do { i++; } while (i < 3); printf("%d", i); return 0; }'
        assert out(src) == "3"

    def test_switch_with_fallthrough(self):
        src = """
        int main() {
          int x = 1, y = 0;
          switch (x) {
            case 1: y += 1;
            case 2: y += 10; break;
            case 3: y += 100; break;
            default: y = -1;
          }
          printf("%d", y);
          return 0;
        }
        """
        assert out(src) == "11"

    def test_switch_default(self):
        src = """
        int main() {
          int y = 0;
          switch (42) { case 1: y = 1; break; default: y = 9; }
          printf("%d", y);
          return 0;
        }
        """
        assert out(src) == "9"

    def test_runaway_loop_guard(self):
        with pytest.raises(SimulationError):
            run("int main() { while (1) { int x = 0; } return 0; }", max_steps=10_000)


class TestArraysPointersStructs:
    def test_array_roundtrip(self):
        src = """
        int main() {
          double a[8];
          for (int i = 0; i < 8; i++) a[i] = i * 1.5;
          printf("%.1f", a[4]);
          return 0;
        }
        """
        assert out(src) == "6.0"

    def test_2d_array(self):
        src = """
        int main() {
          int m[3][4];
          for (int i = 0; i < 3; i++)
            for (int j = 0; j < 4; j++)
              m[i][j] = i * 10 + j;
          printf("%d %d", m[2][3], m[0][1]);
          return 0;
        }
        """
        assert out(src) == "23 1"

    def test_global_array_init_list(self):
        src = 'int a[4] = {5, 6, 7, 8};\nint main() { printf("%d", a[2]); return 0; }'
        assert out(src) == "7"

    def test_malloc_and_pointer_indexing(self):
        src = """
        int main() {
          double *p = (double *)malloc(16 * sizeof(double));
          for (int i = 0; i < 16; i++) p[i] = i;
          double s = p[3] + p[10];
          free(p);
          printf("%.0f", s);
          return 0;
        }
        """
        assert out(src) == "13"

    def test_pointer_arithmetic(self):
        src = """
        int main() {
          int a[6];
          for (int i = 0; i < 6; i++) a[i] = i * i;
          int *p = a + 2;
          printf("%d %d", p[0], *(p + 3));
          return 0;
        }
        """
        assert out(src) == "4 25"

    def test_array_param_passing(self):
        src = """
        void fill(double *v, int n) { for (int i = 0; i < n; i++) v[i] = 2.0 * i; }
        double total(const double *v, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) s += v[i];
          return s;
        }
        int main() {
          double buf[10];
          fill(buf, 10);
          printf("%.0f", total(buf, 10));
          return 0;
        }
        """
        assert out(src) == "90"

    def test_struct_members(self):
        src = """
        typedef struct { double x; double y; } Point;
        int main() {
          Point p;
          p.x = 3.0; p.y = 4.0;
          printf("%.0f", p.x * p.x + p.y * p.y);
          return 0;
        }
        """
        assert out(src) == "25"

    def test_array_of_structs(self):
        src = """
        typedef struct { float x; float q; } Atom;
        Atom atoms[4];
        int main() {
          for (int i = 0; i < 4; i++) { atoms[i].x = i; atoms[i].q = 2.0f; }
          float s = 0.0f;
          for (int i = 0; i < 4; i++) s += atoms[i].x * atoms[i].q;
          printf("%.0f", s);
          return 0;
        }
        """
        assert out(src) == "12"

    def test_address_of_scalar(self):
        src = """
        void set(int *p) { *p = 42; }
        int main() { int x = 0; set(&x); printf("%d", x); return 0; }
        """
        assert out(src) == "42"

    def test_memset_memcpy(self):
        src = """
        int main() {
          double a[8]; double b[8];
          for (int i = 0; i < 8; i++) a[i] = i;
          memset(b, 0, 8 * sizeof(double));
          memcpy(b, a, 8 * sizeof(double));
          printf("%.0f", b[7]);
          return 0;
        }
        """
        assert out(src) == "7"


class TestFunctions:
    def test_recursion(self):
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { printf("%d", fib(10)); return 0; }
        """
        assert out(src) == "55"

    def test_globals_shared(self):
        src = """
        int counter;
        void bump() { counter += 2; }
        int main() { bump(); bump(); printf("%d", counter); return 0; }
        """
        assert out(src) == "4"

    def test_rand_deterministic(self):
        src = """
        int main() {
          srand(7);
          int a = rand() % 100;
          srand(7);
          int b = rand() % 100;
          printf("%d", a == b);
          return 0;
        }
        """
        assert out(src) == "1"

    def test_unknown_function_raises(self):
        with pytest.raises(SimulationError):
            run("int main() { mystery(); return 0; }")


class TestPrintf:
    def test_format_variants(self):
        src = r'''
        int main() {
          printf("%d|%5d|%-3d|", 42, 42, 7);
          printf("%f|%.3f|%e|", 1.5, 2.0/3.0, 1234.5);
          printf("%s|%c|%u|%%", "hi", 65, 9);
          return 0;
        }
        '''
        text = out(src)
        assert "42|   42|7  |" in text
        assert "0.667" in text
        assert "hi|A|9|%" in text

    def test_long_format(self):
        assert out('int main() { printf("%ld", 10); return 0; }') == "10"


class TestOffloadSemantics:
    def test_kernel_executes_on_device_copy(self):
        # Without map(to:), an alloc'd device array is zeros — the kernel
        # result must show that, proving kernels do not touch host data.
        src = """
        double a[4]; double r;
        int main() {
          for (int i = 0; i < 4; i++) a[i] = 100.0;
          #pragma omp target data map(alloc: a)
          {
            #pragma omp target
            for (int i = 0; i < 4; i++) a[i] += 1.0;
            #pragma omp target update from(a)
          }
          printf("%.0f", a[0]);
          return 0;
        }
        """
        # map(alloc:) gives the kernel zeroed device storage; the update
        # copies back zeros + 1, clobbering the host's 100s.
        assert out(src) == "1"

    def test_implicit_tofrom_per_kernel(self):
        src = """
        int a[8];
        int main() {
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] = i;
          #pragma omp target
          for (int i = 0; i < 8; i++) a[i] *= 2;
          printf("%d", a[7]);
          return 0;
        }
        """
        res = run(src)
        assert res.output == "14"
        assert res.stats.h2d_calls == 2  # one per kernel (Listing 2 waste)
        assert res.stats.d2h_calls == 2

    def test_data_region_eliminates_intermediate_copies(self):
        src = """
        int a[8];
        int main() {
          #pragma omp target data map(tofrom: a)
          {
            #pragma omp target
            for (int i = 0; i < 8; i++) a[i] = i;
            #pragma omp target
            for (int i = 0; i < 8; i++) a[i] *= 2;
          }
          printf("%d", a[7]);
          return 0;
        }
        """
        res = run(src)
        assert res.output == "14"
        assert res.stats.h2d_calls == 1
        assert res.stats.d2h_calls == 1

    def test_firstprivate_scalar_no_memcpy(self):
        src = """
        double a[4]; double scale;
        int main() {
          scale = 2.0;
          #pragma omp target map(tofrom: a) firstprivate(scale)
          for (int i = 0; i < 4; i++) a[i] = scale * i;
          printf("%.0f", a[3]);
          return 0;
        }
        """
        res = run(src)
        assert res.output == "6"
        # only the array moves: 1 HtoD + 1 DtoH
        assert res.stats.h2d_calls == 1
        assert res.stats.d2h_calls == 1

    def test_mapped_scalar_costs_memcpys(self):
        src = """
        double a[4]; double scale;
        int main() {
          scale = 2.0;
          #pragma omp target map(tofrom: a) map(to: scale)
          for (int i = 0; i < 4; i++) a[i] = scale * i;
          printf("%.0f", a[3]);
          return 0;
        }
        """
        res = run(src)
        assert res.output == "6"
        assert res.stats.h2d_calls == 2  # array + scalar

    def test_firstprivate_write_is_private(self):
        src = """
        int a[4]; int t;
        int main() {
          t = 5;
          #pragma omp target map(tofrom: a) firstprivate(t)
          for (int i = 0; i < 4; i++) { t = t + 1; a[i] = t; }
          printf("%d %d", t, a[0]);
          return 0;
        }
        """
        res = run(src)
        host_t, a0 = res.output.split()
        assert host_t == "5"  # host copy untouched
        assert int(a0) >= 6

    def test_reduction_scalar(self):
        src = """
        double a[16];
        int main() {
          for (int i = 0; i < 16; i++) a[i] = 1.0;
          double sum = 0.0;
          #pragma omp target teams distribute parallel for reduction(+: sum) map(to: a)
          for (int i = 0; i < 16; i++) sum += a[i];
          printf("%.0f", sum);
          return 0;
        }
        """
        res = run(src)
        assert res.output == "16"
        assert res.stats.d2h_calls == 0  # reduction travels as kernel arg

    def test_update_to_refreshes_device(self):
        src = """
        int a[4]; int r;
        int main() {
          #pragma omp target data map(tofrom: a)
          {
            #pragma omp target
            for (int i = 0; i < 4; i++) a[i] = 1;
            #pragma omp target update from(a)
            for (int i = 0; i < 4; i++) a[i] += 10;
            #pragma omp target update to(a)
            #pragma omp target
            for (int i = 0; i < 4; i++) a[i] *= 2;
          }
          printf("%d", a[0]);
          return 0;
        }
        """
        assert out(src) == "22"

    def test_kernel_launch_counted(self):
        src = """
        int a[4];
        int main() {
          for (int t = 0; t < 5; t++) {
            #pragma omp target
            for (int i = 0; i < 4; i++) a[i] += 1;
          }
          return 0;
        }
        """
        assert run(src).stats.kernel_launches == 5

    def test_pointer_into_mapped_array(self):
        src = """
        int main() {
          double *p = (double *)malloc(8 * sizeof(double));
          for (int i = 0; i < 8; i++) p[i] = i;
          #pragma omp target
          for (int i = 0; i < 8; i++) p[i] *= 3.0;
          printf("%.0f", p[7]);
          free(p);
          return 0;
        }
        """
        assert out(src) == "21"

    def test_omp_get_wtime_monotonic(self):
        src = """
        int a[64];
        int main() {
          double t0 = omp_get_wtime();
          #pragma omp target
          for (int i = 0; i < 64; i++) a[i] = i;
          double t1 = omp_get_wtime();
          printf("%d", t1 > t0);
          return 0;
        }
        """
        assert out(src) == "1"
