"""End-to-end tests of the OMPDart tool (parse -> analyze -> rewrite).

Anchored on the paper's motivating listings (section III) and the
behaviours section VI attributes to the tool on the benchmarks.
"""

import pytest

from repro.core import transform_source
from repro.diagnostics import ToolError
from repro.frontend import ast_nodes as A
from repro.frontend import parse_source

LISTING1 = """#define N 64
int a[N];
int main() {
  for (int i = 0; i < N; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) {
      a[j] += j;
    }
  }
  return 0;
}
"""

LISTING2 = """#define N 64
int a[N];
int main() {
  #pragma omp target
  for (int i = 0; i < N; ++i) {
    a[i] += i;
  }
  #pragma omp target
  for (int i = 0; i < N; ++i) {
    a[i] *= i;
  }
  return 0;
}
"""

# The program the paper's Listing 3 *intends*: array summed on the host
# every iteration of the outer loop.
LISTING3_INTENT = """#define N 64
#define M 4
int a[N];
int total;
int main() {
  int sum = 0;
  for (int i = 0; i < M; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) {
      a[j] += j;
    }
    for (int j = 0; j < N; ++j) {
      sum += a[j];
    }
  }
  total = sum;
  return 0;
}
"""


def reparses(result):
    """The tool's output must itself be valid input C."""
    tu = parse_source(result.output_source, "out.c")
    return tu


class TestListing1:
    def test_region_wraps_outer_loop(self):
        res = transform_source(LISTING1, "l1.c")
        out = res.output_source
        assert "#pragma omp target data map(tofrom: a)" in out
        # the region must open before the outer for loop
        assert out.index("target data") < out.index("for (int i")

    def test_no_update_directives_needed(self):
        res = transform_source(LISTING1, "l1.c")
        assert "target update" not in res.output_source

    def test_output_reparses(self):
        res = transform_source(LISTING1, "l1.c")
        tu = reparses(res)
        assert len(list(tu.walk_instances(A.OMPTargetDataDirective))) == 1

    def test_plan_metadata(self):
        res = transform_source(LISTING1, "l1.c")
        (plan,) = res.plans
        assert not plan.region.single_kernel
        assert [m.var for m in plan.maps] == ["a"]


class TestListing2:
    def test_single_region_covers_both_kernels(self):
        res = transform_source(LISTING2, "l2.c")
        out = res.output_source
        assert out.count("#pragma omp target data") == 1
        # no transfers between the kernels
        assert "target update" not in out

    def test_map_tofrom(self):
        res = transform_source(LISTING2, "l2.c")
        (plan,) = res.plans
        assert plan.map_clause_texts() == ["map(tofrom: a)"]


class TestListing3Intent:
    def test_update_from_inserted_inside_loop(self):
        res = transform_source(LISTING3_INTENT, "l3.c")
        out = res.output_source
        assert "#pragma omp target update from(a)" in out
        # the update must sit inside the outer loop (after the kernel,
        # before the summation loop), i.e. textually after the kernel
        # pragma and before `sum += a[j]`.
        upd = out.index("target update from(a)")
        assert out.index("#pragma omp target\n") < upd or \
            out.index("omp target") < upd
        assert upd < out.index("sum += a[j]")

    def test_map_to_not_tofrom_everything(self):
        res = transform_source(LISTING3_INTENT, "l3.c")
        (plan,) = res.plans
        by_var = {m.var: m.map_type.value for m in plan.maps}
        assert by_var["a"] == "to"  # from is satisfied by the in-loop update

    def test_output_reparses_and_keeps_structure(self):
        res = transform_source(LISTING3_INTENT, "l3.c")
        tu = reparses(res)
        updates = list(tu.walk_instances(A.OMPTargetUpdateDirective))
        assert len(updates) == 1


class TestInputConstraints:
    def test_existing_target_data_rejected(self):
        src = """
        int a[4];
        int main() {
          #pragma omp target data map(tofrom: a)
          {
            #pragma omp target
            for (int i = 0; i < 4; i++) a[i] = i;
          }
          return 0;
        }
        """
        with pytest.raises(ToolError) as exc:
            transform_source(src, "bad.c")
        assert any("target data" in d.message for d in exc.value.diagnostics)

    def test_existing_target_update_rejected(self):
        src = """
        int a[4];
        int main() {
          #pragma omp target
          for (int i = 0; i < 4; i++) a[i] = i;
          #pragma omp target update from(a)
          return 0;
        }
        """
        with pytest.raises(ToolError):
            transform_source(src, "bad.c")

    def test_declaration_after_region_start_rejected(self):
        # `b` is declared between two kernels: inside the region extent.
        src = """
        int a[4];
        int main() {
          #pragma omp target
          for (int i = 0; i < 4; i++) a[i] = i;
          int b[4];
          b[0] = a[0];
          #pragma omp target
          for (int i = 0; i < 4; i++) a[i] += b[0];
          return b[0];
        }
        """
        with pytest.raises(ToolError) as exc:
            transform_source(src, "bad.c")
        assert any("must precede" in d.message for d in exc.value.diagnostics)

    def test_program_without_kernels_unchanged(self):
        src = "int main() { return 0; }\n"
        res = transform_source(src, "plain.c")
        assert res.output_source == src
        assert res.plans == []


class TestFirstprivate:
    SRC = """
    double a[32];
    int main() {
      double scale = 2.5;
      int n = 32;
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 32; i++) {
        a[i] = scale * i + n;
      }
      return 0;
    }
    """

    def test_read_only_scalars_become_firstprivate(self):
        res = transform_source(self.SRC, "fp.c")
        out = res.output_source
        assert "firstprivate(" in out
        assert "n" in out[out.index("firstprivate"):]
        assert "scale" in out[out.index("firstprivate"):]

    def test_scalars_not_mapped(self):
        res = transform_source(self.SRC, "fp.c")
        (plan,) = res.plans
        mapped = {m.var for m in plan.maps}
        assert "scale" not in mapped and "n" not in mapped
        assert mapped == {"a"}

    def test_written_scalar_is_not_firstprivate(self):
        src = """
        double a[32]; int flag;
        int main() {
          #pragma omp target
          for (int i = 0; i < 32; i++) { a[i] = i; flag = 1; }
          return flag;
        }
        """
        res = transform_source(src, "wf.c")
        (plan,) = res.plans
        fp_vars = {v for spec in plan.firstprivates for v in spec.variables}
        assert "flag" not in fp_vars
        assert "flag" in {m.var for m in plan.maps}


class TestReduction:
    def test_reduction_vars_not_mapped(self):
        src = """
        double a[64]; double total;
        int main() {
          double sum = 0.0;
          #pragma omp target teams distribute parallel for reduction(+: sum)
          for (int i = 0; i < 64; i++) sum += a[i];
          total = sum;
          return 0;
        }
        """
        res = transform_source(src, "red.c")
        (plan,) = res.plans
        assert "sum" in plan.reduction_vars
        assert "sum" not in {m.var for m in plan.maps}
        fp_vars = {v for spec in plan.firstprivates for v in spec.variables}
        assert "sum" not in fp_vars


class TestDeviceOnlyData:
    def test_scratch_array_gets_alloc(self):
        src = """
        double tmp[64]; double out[64]; double res;
        int main() {
          #pragma omp target
          for (int i = 0; i < 64; i++) tmp[i] = i * 2.0;
          #pragma omp target
          for (int i = 0; i < 64; i++) out[i] = tmp[i] + 1.0;
          res = out[0];
          return 0;
        }
        """
        res = transform_source(src, "alloc.c")
        (plan,) = res.plans
        by_var = {m.var: m.map_type.value for m in plan.maps}
        # tmp is produced and consumed on-device only... but it is a
        # global (escaping), so sound handling gives it `from`.
        assert by_var["out"] in ("from", "tofrom")
        assert "alloc" in {m.map_type.value for m in plan.maps} or by_var["tmp"] == "from"

    def test_local_scratch_is_alloc(self):
        src = """
        double out[64]; double res;
        int main() {
          double tmp[64];
          #pragma omp target
          for (int i = 0; i < 64; i++) tmp[i] = i * 2.0;
          #pragma omp target
          for (int i = 0; i < 64; i++) out[i] = tmp[i] + 1.0;
          res = out[0];
          return 0;
        }
        """
        res = transform_source(src, "alloc2.c")
        (plan,) = res.plans
        by_var = {m.var: m.map_type.value for m in plan.maps}
        assert by_var["tmp"] == "alloc"


class TestToolOverhead:
    def test_elapsed_recorded(self):
        res = transform_source(LISTING1, "l1.c")
        assert res.elapsed_seconds > 0.0

    def test_report_mentions_constructs(self):
        res = transform_source(LISTING3_INTENT, "l3.c")
        report = res.report()
        assert "map(to: a)" in report
        assert "update" in report


class TestIdempotentStructure:
    def test_single_kernel_fast_path_appends_clause(self):
        src = """
        int a[16];
        int main() {
          a[0] = 1;
          #pragma omp target
          for (int i = 0; i < 16; i++) a[i] += i;
          return a[0];
        }
        """
        res = transform_source(src, "fast.c")
        out = res.output_source
        # no separate data region: map clause appended to the kernel pragma
        assert "#pragma omp target data" not in out
        assert "#pragma omp target map(tofrom: a)" in out

    def test_multiline_pragma_clause_appended_after_continuation(self):
        src = (
            "int a[16];\n"
            "int main() {\n"
            "  a[0] = 1;\n"
            "  #pragma omp target teams distribute \\\n"
            "      parallel for\n"
            "  for (int i = 0; i < 16; i++) a[i] += i;\n"
            "  return a[0];\n"
            "}\n"
        )
        res = transform_source(src, "ml.c")
        reparses(res)
        assert "map(tofrom: a)" in res.output_source
