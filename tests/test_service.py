"""Asyncio job service: scheduler dedup, the HTTP front, and
bit-identity between served suite jobs and ``ompdart suite``."""

import asyncio
import json

import pytest

from repro.service.core import (
    BenchmarkJobSpec,
    SuiteJobSpec,
    TransformJobSpec,
    execute_job,
    spec_from_dict,
    spec_to_dict,
)

SRC = """
int a[32];
int main() {
  a[0] = 1;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 32; i++) a[i] = a[i] + 1;
  return a[0];
}
"""


def _scheduler(**kw):
    from repro.service.scheduler import JobScheduler

    kw.setdefault("workers", 2)
    kw.setdefault("use_processes", False)
    return JobScheduler(**kw)


async def _request(host, port, method, path, payload=None):
    from repro.service.loadgen import LoadClient

    client = LoadClient(host, port, keep_alive=False)
    try:
        response = await client.request(method, path, payload)
    finally:
        await client.aclose()
    return response.status, response.json()


class TestSpecs:
    def test_keys_are_stable_and_content_addressed(self):
        a = TransformJobSpec(source=SRC, filename="a.c")
        b = TransformJobSpec(source=SRC, filename="a.c")
        c = TransformJobSpec(source=SRC, filename="b.c")
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert SuiteJobSpec().key() != SuiteJobSpec(vectorize=False).key()

    def test_spec_round_trip_through_dict(self):
        for spec in (
            TransformJobSpec(source=SRC, filename="a.c", macros=(("N", 4),)),
            BenchmarkJobSpec(benchmark="bfs", platform="h100-sxm5"),
            SuiteJobSpec(platforms=("a100-pcie4",), benchmarks=("nw",)),
        ):
            again = spec_from_dict(spec_to_dict(spec))
            assert again == spec
            assert again.key() == spec.key()

    def test_spec_from_dict_rejects_bad_input(self):
        with pytest.raises(ValueError):
            spec_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            spec_from_dict({"kind": "transform", "bogus": 1})
        with pytest.raises(ValueError):
            spec_from_dict(["not", "a", "dict"])

    def test_execute_transform_job(self):
        result = execute_job(TransformJobSpec(source=SRC, filename="a.c"))
        assert result["ok"] is True
        assert result["directive_count"] >= 1
        assert "map(" in result["output_source"]


class TestScheduler:
    def test_duplicate_submissions_coalesce(self):
        async def run():
            async with _scheduler() as sched:
                spec = TransformJobSpec(source=SRC, filename="a.c")
                jobs = await asyncio.gather(
                    *[sched.submit(spec) for _ in range(5)]
                )
                assert len({j.key for j in jobs}) == 1
                results = await asyncio.gather(
                    *[asyncio.shield(j.future) for j in jobs]
                )
                assert all(r == results[0] for r in results)
                stats = sched.stats()
                assert stats["submitted"] == 5
                assert stats["deduplicated"] == 4
                assert stats["executed"] == 1
                return jobs[0]

        job = asyncio.run(run())
        assert job.submissions == 5

    def test_distinct_specs_run_separately(self):
        async def run():
            async with _scheduler() as sched:
                r1 = await sched.run(TransformJobSpec(source=SRC, filename="a.c"))
                r2 = await sched.run(TransformJobSpec(source=SRC, filename="b.c"))
                assert sched.stats()["executed"] == 2
                return r1, r2

        r1, r2 = asyncio.run(run())
        assert r1["filename"] == "a.c" and r2["filename"] == "b.c"

    def test_failed_job_surfaces_error(self):
        async def run():
            async with _scheduler() as sched:
                spec = BenchmarkJobSpec(benchmark="no-such-benchmark")
                job = await sched.submit(spec)
                with pytest.raises(Exception):
                    await asyncio.shield(job.future)
                assert job.state == "failed"
                assert job.error
                assert sched.stats()["failed"] == 1

        asyncio.run(run())

    def test_stats_carry_fault_tolerance_counters(self):
        async def run():
            async with _scheduler() as sched:
                stats = sched.stats()
                for key in ("cancelled", "poisoned", "unavailable",
                            "timed_out"):
                    assert stats[key] == 0
                # The thread runtime has no supervisor block...
                assert "supervisor" not in stats
                await sched.run(TransformJobSpec(source=SRC, filename="a.c"))
                assert sched.stats()["executed"] == 1

        asyncio.run(run())

    def test_metrics_expose_supervision_gauges(self):
        async def run():
            from repro.service.server import JobServer

            server = JobServer(_scheduler(), port=0)
            host, port = await server.start()
            try:
                from repro.service.loadgen import LoadClient

                client = LoadClient(host, port, keep_alive=False)
                try:
                    response = await client.request("GET", "/metrics")
                finally:
                    await client.aclose()
                text = response.body.decode()
                for gauge in (
                    "ompdart_workers_alive",
                    "ompdart_worker_restarts",
                    "ompdart_job_crash_retries",
                    "ompdart_cancel_kills",
                ):
                    assert gauge in text
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_jobs_share_the_artifact_store(self, tmp_path):
        async def run():
            async with _scheduler(cache_dir=str(tmp_path)) as sched:
                await sched.run(TransformJobSpec(source=SRC, filename="a.c"))
                stats = sched.stats()
                if "store" not in stats:
                    pytest.skip("shared memory unavailable on this host")
                assert stats["store"]  # per-pass publish counters exist
                assert any(
                    s["writes"] > 0 for s in stats["store"].values()
                )

        asyncio.run(run())
        assert list(tmp_path.glob("*.art"))


class TestServer:
    def test_routes(self):
        async def run():
            from repro.service.server import JobServer

            server = JobServer(_scheduler(), port=0)
            host, port = await server.start()
            try:
                status, body = await _request(host, port, "GET", "/healthz")
                assert status == 200
                assert body["ok"] is True
                assert body["status"] == "ok"

                status, body = await _request(
                    host, port, "POST", "/jobs",
                    {"kind": "transform", "source": SRC, "filename": "a.c"},
                )
                assert status == 202
                assert body["deduped"] is False
                key = body["job"]

                status, body = await _request(
                    host, port, "GET", f"/jobs/{key}?wait=1"
                )
                assert status == 200
                assert body["state"] == "done"
                assert body["result"]["ok"] is True

                # Duplicate submission coalesces.
                status, body = await _request(
                    host, port, "POST", "/jobs",
                    {"kind": "transform", "source": SRC, "filename": "a.c"},
                )
                assert status == 202 and body["deduped"] is True

                status, body = await _request(host, port, "GET", "/stats")
                assert status == 200
                assert body["submitted"] == 2 and body["deduplicated"] == 1

                status, body = await _request(host, port, "GET", "/jobs")
                assert status == 200 and len(body["jobs"]) == 1

                status, _ = await _request(host, port, "GET", "/jobs/unknown")
                assert status == 404
                status, _ = await _request(host, port, "DELETE", "/stats")
                assert status == 405
                status, _ = await _request(host, port, "GET", "/nowhere")
                assert status == 404
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_malformed_specs_answer_400(self):
        async def run():
            from repro.service.server import JobServer

            server = JobServer(_scheduler(), port=0)
            host, port = await server.start()
            try:
                status, body = await _request(
                    host, port, "POST", "/jobs", {"kind": "nope"}
                )
                assert status == 400 and "unknown job kind" in body["error"]

                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /run HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n"
                    b"Content-Length: 7\r\n\r\nnotjson"
                )
                await writer.drain()
                data = await reader.read()
                writer.close()
                assert b"400" in data.split(b"\r\n")[0]
            finally:
                await server.aclose()

        asyncio.run(run())


def _strip_observability(payload):
    """Drop machine-dependent fields (what suite-diff ignores too)."""
    if isinstance(payload, dict):
        return {
            k: _strip_observability(v)
            for k, v in payload.items()
            if k not in ("sim_wall_s", "tool", "artifact_store")
        }
    if isinstance(payload, list):
        return [_strip_observability(v) for v in payload]
    return payload


class TestServedSuite:
    """The acceptance path: concurrent served suites == ``ompdart suite``."""

    def test_eight_concurrent_suite_submissions(self, tmp_path):
        from repro.report.perf import sweep_to_dict
        from repro.suite.runner import run_sweep

        async def run():
            from repro.service.server import JobServer

            server = JobServer(
                _scheduler(max_concurrency=8, cache_dir=str(tmp_path)),
                port=0,
            )
            host, port = await server.start()
            try:
                responses = await asyncio.gather(
                    *[
                        _request(host, port, "POST", "/run", {"kind": "suite"})
                        for _ in range(8)
                    ]
                )
                stats = (await _request(host, port, "GET", "/stats"))[1]
            finally:
                await server.aclose()
            return responses, stats

        responses, stats = asyncio.run(run())
        assert {status for status, _ in responses} == {200}
        payloads = [body["result"] for _, body in responses]
        rendered = {json.dumps(p, sort_keys=True) for p in payloads}
        assert len(rendered) == 1  # duplicates coalesced onto one job
        assert stats["submitted"] == 8
        assert stats["deduplicated"] == 7
        assert stats["executed"] == 1
        assert stats["failed"] == 0

        # Bit-identical to the CLI path (modulo wall-clock fields the
        # suite-diff comparator ignores as well).
        direct = sweep_to_dict(run_sweep(["a100-pcie4"]))
        assert _strip_observability(payloads[0]) == _strip_observability(direct)

    def test_served_benchmark_matches_direct_run(self):
        from repro.report.perf import run_to_dict
        from repro.suite.runner import run_benchmark

        async def run():
            async with _scheduler() as sched:
                return await sched.run(BenchmarkJobSpec(benchmark="nw"))

        served = asyncio.run(run())
        direct = run_to_dict(run_benchmark("nw", concurrent_variants=False))
        assert served["platform"] == "a100-pcie4"
        assert _strip_observability(served["run"]) == _strip_observability(direct)


class TestServeCLI:
    def test_arg_parser_defaults(self):
        from repro.cli import build_serve_arg_parser

        args = build_serve_arg_parser().parse_args([])
        assert args.port == 8571
        assert args.workers == 2
        assert args.max_jobs == 8

    def test_rejects_bad_worker_counts(self, capsys):
        from repro.cli import main

        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
