"""Vectorizing kernel executor: equality, fallbacks, step accounting.

The contract under test is absolute: for every program the simulator
can run, ``vectorize=True`` and ``vectorize=False`` must produce
bit-identical output text, transfer stats (calls, bytes, modelled
times), and kernel-launch counts.  The vectorizer may *decline* any
kernel — but it may never change a result.
"""

import numpy as np
import pytest

from repro.frontend.parser import parse_source
from repro.runtime.interp import Interpreter, SimulationError, run_simulation
from repro.suite.registry import BENCHMARK_ORDER, get_benchmark


def both(source, name="<test>", **kwargs):
    interp = run_simulation(source, name, vectorize=False, **kwargs)
    vec = run_simulation(source, name, vectorize=True, **kwargs)
    return interp, vec


def assert_identical(a, b):
    assert a.output == b.output
    assert a.return_code == b.return_code
    assert a.stats == b.stats  # calls, bytes, times, launches — all of it
    assert a.profiler.records == b.profiler.records


# ---------------------------------------------------------------------------
# Property-style equality across the full nine-benchmark corpus
# ---------------------------------------------------------------------------

#: Expected lowering strategy per benchmark — since phase 2, *every*
#: corpus variant executes through a vectorized strategy (zero
#: interpreter fallbacks).  PR 6's source generator upgrades the
#: straight single-level nests to the compiled ``codegen`` tier.
STRATEGY = {
    "accuracy": "codegen",
    "ace": "codegen",
    "backprop": "collapse",
    "bfs": "masked",
    "clenergy": "codegen",
    "hotspot": "wavefront",
    "lulesh": "codegen",
    "nw": "wavefront",
    "xsbench": "codegen",
}


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
@pytest.mark.parametrize("variant", ["unoptimized", "expert"])
def test_corpus_equality(name, variant):
    bench = get_benchmark(name)
    source = (
        bench.unoptimized_source()
        if variant == "unoptimized"
        else bench.expert_source()
    )
    interp, vec = both(source, f"{name}_{variant}.c")
    assert_identical(interp, vec)
    assert interp.vectorized_launches == 0
    assert interp.vector_strategy == "interpreter"
    assert vec.vectorized_launches == vec.stats.kernel_launches > 0
    assert vec.fallback_reason is None
    assert vec.vector_strategy == STRATEGY[name]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_transformed_variant_equality(name):
    """The tool's own output (with data directives) vectorizes too."""
    from repro.core.tool import OMPDart, ToolOptions

    bench = get_benchmark(name)
    transformed = OMPDart(ToolOptions()).run(
        bench.unoptimized_source(), f"{name}.c"
    ).output_source
    interp, vec = both(transformed, f"{name}_ompdart.c")
    assert_identical(interp, vec)
    assert vec.vectorized_launches == vec.stats.kernel_launches
    assert vec.vector_strategy == STRATEGY[name]


def test_corpus_fallback_reasons_recorded():
    """bfs's guarded kernels vectorize since phase 2; a genuinely
    inexpressible kernel (a while loop) still records its reason."""
    tu = parse_source(get_benchmark("bfs").unoptimized_source(), "bfs.c")
    interp = Interpreter(tu)
    interp.run()
    assert not interp.vector_notes  # every kernel vectorized

    src = fallback_case("int k = 0; while (k < i) { k++; } b[i] = k;")
    tu = parse_source(src, "while.c")
    interp = Interpreter(tu)
    interp.run()
    assert interp.vector_notes
    assert any("WhileStmt" in note for note in interp.vector_notes.values())


# ---------------------------------------------------------------------------
# Targeted eligible shapes
# ---------------------------------------------------------------------------


def test_reduction_clause_plus():
    src = """
    double data[200];
    int main() {
      for (int i = 0; i < 200; i++) { data[i] = (i % 17) * 0.3 - 1.0; }
      double total = 0.0;
      #pragma omp target teams distribute parallel for reduction(+:total)
      for (int i = 0; i < 200; i++) {
        total += data[i] * 1.5;
      }
      printf("total %.12f\\n", total);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_reduction_minus_compound():
    src = """
    double data[64];
    int main() {
      for (int i = 0; i < 64; i++) { data[i] = i * 0.125; }
      double left = 1000.0;
      #pragma omp target teams distribute parallel for reduction(-:left)
      for (int i = 0; i < 64; i++) {
        left -= data[i];
      }
      printf("left %.12f\\n", left);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_reduction_min_ternary_and_max_fmax():
    src = """
    double data[128];
    int main() {
      for (int i = 0; i < 128; i++) { data[i] = ((i * 29) % 53) * 0.7 - 9.0; }
      double lo = 1e30;
      double hi = -1e30;
      #pragma omp target teams distribute parallel for reduction(min:lo)
      for (int i = 0; i < 128; i++) {
        lo = (data[i] < lo) ? data[i] : lo;
      }
      #pragma omp target teams distribute parallel for reduction(max:hi)
      for (int i = 0; i < 128; i++) {
        hi = fmax(hi, data[i]);
      }
      printf("lo %.6f hi %.6f\\n", lo, hi);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 2


def test_implicitly_mapped_scalar_accumulation():
    """A mapped scalar (no reduction clause) accumulates sequentially."""
    src = """
    double data[100];
    double acc;
    int main() {
      acc = 0.25;
      for (int i = 0; i < 100; i++) { data[i] = i * 0.01; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 100; i++) {
        acc += data[i];
      }
      printf("acc %.12f\\n", acc);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_multidim_subscripts_and_descending_loop():
    src = """
    double m[8][16];
    int main() {
      #pragma omp target teams distribute parallel for
      for (int i = 7; i >= 0; i--) {
        for (int j = 0; j < 16; j++) {
          m[i][j] = i * 100.0 + j;
        }
      }
      double sum = 0.0;
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 16; j++) { sum += m[i][j]; }
      }
      printf("sum %.1f\\n", sum);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_float32_arrays_widen_like_the_interpreter():
    """The interpreter loads float32 elements as Python floats (f64) and
    narrows only at the array store; the vectorized path must widen its
    loads and locals the same way or float32 kernels double-round."""
    src = """
    float a[64];
    float b[64];
    float c[64];
    int main() {
      for (int i = 0; i < 64; i++) {
        a[i] = (i * 37 % 19) * 0.0517 - 0.9;
        b[i] = (i * 53 % 23) * 0.0431 - 1.1;
        c[i] = 0.0;
      }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 64; i++) {
        float t = a[i];
        float u = b[i];
        float v = t * u + t;
        c[i] = v * 0.5 + c[i];
      }
      double s = 0.0;
      for (int i = 0; i < 64; i++) { s += c[i]; }
      printf("%.12f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_integer_c_division_and_modulo():
    """C truncating / and % over negative values, vector vs scalar."""
    src = """
    int out[61];
    int main() {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 61; i++) {
        int v = i - 30;
        out[i] = v / 7 + (v % 7) * 100;
      }
      int check = 0;
      for (int i = 0; i < 61; i++) { check += out[i] * (i + 1); }
      printf("check %d\\n", check);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_integer_overflow_matches_unbounded_interpreter_ints():
    """The interpreter computes lanes in unbounded Python ints; an
    int64 intermediate past 2**63 must not silently wrap."""
    src = """
    long a[4];
    long b[4];
    int main() {
      for (int i = 0; i < 4; i++) { a[i] = 4000000000 + i; b[i] = 0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 4; i++) {
        b[i] = a[i] * a[i] / 1000000000;
      }
      for (int i = 0; i < 4; i++) { printf("%d ", b[i]); }
      printf("\\n");
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1
    assert "16000000000" in vec.output


def test_gather_read_with_data_dependent_index():
    src = """
    double table[50];
    double out[40];
    int main() {
      for (int i = 0; i < 50; i++) { table[i] = i * 1.5; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 40; i++) {
        int idx = (i * 13 + 7) % 50;
        out[i] = table[idx] + 0.5;
      }
      double s = 0.0;
      for (int i = 0; i < 40; i++) { s += out[i]; }
      printf("s %.6f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


# ---------------------------------------------------------------------------
# Fallback shapes: must run interpreted, with identical results
# ---------------------------------------------------------------------------


def fallback_case(body, setup="", decls=""):
    return f"""
    double a[32];
    double b[32];
    {decls}
    int main() {{
      for (int i = 0; i < 32; i++) {{ a[i] = i * 0.5; b[i] = 0.0; }}
      {setup}
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 32; i++) {{
        {body}
      }}
      double s = 0.0;
      for (int i = 0; i < 32; i++) {{ s += b[i]; }}
      printf("s %.6f\\n", s);
      return 0;
    }}
    """


@pytest.mark.parametrize(
    "body,decls",
    [
        # printf inside the kernel
        ('b[i] = a[i]; printf("%d", i);', ""),
        # while loop in the body
        ("int k = 0; while (k < i) { k++; } b[i] = k;", ""),
    ],
    ids=["printf", "while"],
)
def test_ineligible_kernels_fall_back(body, decls):
    src = fallback_case(body, decls=decls)
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 0
    assert vec.vector_strategy == "interpreter"
    assert vec.fallback_reason is not None


@pytest.mark.parametrize(
    "body,decls,strategy",
    [
        # indirect store targets all collide on idx[i]==0: the masked
        # scatter commit declines at launch and the sequential replay
        # (unit-slice wavefront) picks it up.
        ("b[idx[i]] = a[i];", "int idx[32];", "wavefront"),
        # a (useless) if-statement makes the nest masked
        ("if (i == 7) {{ }} b[i] = a[i];".replace("{{ }}", "{ }"), "",
         "masked"),
        # cross-iteration stencil dependence (read != write subscript):
        # the scatter store overlaps the read of b, so masked declines
        # at commit and replay executes it in exact sequential order
        ("b[i] = a[i]; a[(i + 1) % 32] = b[i];", "", "wavefront"),
    ],
    ids=["indirect-store", "if-stmt", "stencil-rw"],
)
def test_formerly_ineligible_kernels_now_vectorize(body, decls, strategy):
    """Shapes PR 3 declined that phase 2 executes — still bit-identical."""
    src = fallback_case(body, decls=decls)
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == vec.stats.kernel_launches == 1
    assert vec.vector_strategy == strategy


def test_guarded_division_vectorizes_masked():
    """`b[i] != 0 ? a[i]/b[i] : -1` must not fault on the zero lanes the
    interpreter never divides — each ternary branch evaluates only on
    the (compressed) lanes that selected it."""
    src = """
    int a[16];
    int b[16];
    int out[16];
    int main() {
      for (int i = 0; i < 16; i++) { a[i] = i * 3; b[i] = i % 4; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        out[i] = (b[i] != 0) ? (a[i] / b[i]) : -1;
      }
      int s = 0;
      for (int i = 0; i < 16; i++) { s += out[i]; }
      printf("s %d\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_short_circuit_guarded_division_vectorizes():
    """A lane-varying `&&` left side evaluates the right side only on
    the lanes that did not short-circuit — `12 / b[i]` never sees the
    zero divisors."""
    src = """
    int b[16];
    int out[16];
    int main() {
      for (int i = 0; i < 16; i++) { b[i] = i % 3; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        out[i] = (b[i] != 0 && 12 / b[i] > 3) ? 1 : 0;
      }
      int s = 0;
      for (int i = 0; i < 16; i++) { s += out[i]; }
      printf("s %d\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_overlapping_scatter_store_replays_sequentially():
    """`a[i + j]` writes overlap across lanes (lane i, j=1 and lane
    i+1, j=0 hit the same element) and interpreted execution is
    lane-major while vectorized is inner-loop-major — the launch-time
    disjointness check declines the vector nest, and the sequential
    replay executes it in exact lane-major order instead."""
    src = """
    double a[8];
    int main() {
      for (int i = 0; i < 8; i++) { a[i] = 0.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
          a[i + j] = 10.0 * i + j;
        }
      }
      for (int i = 0; i < 8; i++) { printf("%.0f ", a[i]); }
      printf("\\n");
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1
    assert vec.vector_strategy == "wavefront"


def test_blocked_store_with_tight_inner_range_stays_vectorized():
    """`a[i * 4 + j]` with j < 4 is lane-disjoint (backprop's shape):
    the non-parallel span (3) stays below the parallel stride (4)."""
    src = """
    double a[16];
    int main() {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
          a[i * 4 + j] = 10.0 * i + j;
        }
      }
      double s = 0.0;
      for (int i = 0; i < 16; i++) { s += a[i] * (i + 1); }
      printf("s %.1f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_loop_carried_taint_replays_sequentially():
    """A local that is lane-invariant when an inner bound is compiled
    but assigned a per-lane value later in the same loop body declines
    the vector nest (the second iteration would feed a vector into
    int()) — the sequential replay executes it instead."""
    src = """
    double a[8];
    double out[8];
    int main() {
      for (int i = 0; i < 8; i++) { a[i] = (i % 3) * 1.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i++) {
        double n = 2.0;
        double acc = 0.0;
        for (int j = 0; j < 3; j++) {
          for (int k = 0; k < (int) n; k++) {
            acc += 1.0;
          }
          n = a[i];
        }
        out[i] = acc;
      }
      double s = 0.0;
      for (int i = 0; i < 8; i++) { s += out[i]; }
      printf("s %.1f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1
    assert vec.vector_strategy == "wavefront"


def test_lane_invariant_guard_still_vectorizes():
    """A condition that does not vary across lanes keeps the lazy
    branch selection, so guarded division stays eligible."""
    src = """
    double a[16];
    double out[16];
    int n;
    int main() {
      n = 0;
      for (int i = 0; i < 16; i++) { a[i] = i * 0.5; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        out[i] = (n > 0) ? (a[i] / n) : a[i];
      }
      double s = 0.0;
      for (int i = 0; i < 16; i++) { s += out[i]; }
      printf("s %.3f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)
    assert vec.vectorized_launches == 1


def test_float_division_by_zero_raises_like_interpreter():
    src = """
    double a[8];
    double b[8];
    double out[8];
    int main() {
      for (int i = 0; i < 8; i++) { a[i] = 1.0; b[i] = i * 1.0; }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 8; i++) {
        out[i] = a[i] / b[i];
      }
      return 0;
    }
    """
    for vectorize in (False, True):
        with pytest.raises(ZeroDivisionError):
            run_simulation(src, "<t>", vectorize=vectorize)


def test_runtime_preflight_declines_struct_array():
    """Struct-element arrays pass static checks but decline at preflight."""
    src = """
    struct pt { double x; double y; };
    struct pt pts[16];
    double out[16];
    int main() {
      for (int i = 0; i < 16; i++) {
        pts[i].x = i * 1.0;
        out[i] = 0.0;
      }
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        out[i] = out[i] + i;
      }
      double s = 0.0;
      for (int i = 0; i < 16; i++) { s += out[i]; }
      printf("s %.1f\\n", s);
      return 0;
    }
    """
    interp, vec = both(src)
    assert_identical(interp, vec)


def test_no_vectorize_flag_forces_interpreter():
    src = get_benchmark("clenergy").unoptimized_source()
    vec = run_simulation(src, "clenergy.c", vectorize=True)
    off = run_simulation(src, "clenergy.c", vectorize=False)
    assert vec.vectorized_launches > 0
    assert off.vectorized_launches == 0
    assert vec.stats == off.stats


# ---------------------------------------------------------------------------
# Step accounting and the max_steps guard
# ---------------------------------------------------------------------------


def test_step_counts_match_interpreter_exactly():
    """device_work (hence kernel_time_s) is charged tick-for-tick."""
    src = get_benchmark("clenergy").unoptimized_source()
    interp, vec = both(src, "clenergy.c")
    assert interp.profiler.device_work == vec.profiler.device_work
    assert interp.profiler.host_work == vec.profiler.host_work
    assert interp.stats.kernel_time_s == vec.stats.kernel_time_s


def test_max_steps_guard_trips_under_vectorized_execution():
    src = """
    double a[16];
    int main() {
      #pragma omp target teams distribute parallel for
      for (int i = 0; i < 16; i++) {
        a[i] = i * 1.0;
      }
      return 0;
    }
    """
    # Interpreted and vectorized both run fine with generous budgets...
    for vectorize in (False, True):
        run_simulation(src, "<t>", max_steps=10_000, vectorize=vectorize)
    # ...and both trip the guard with a tiny one.
    for vectorize in (False, True):
        with pytest.raises(SimulationError, match="exceeded 5 steps"):
            run_simulation(src, "<t>", max_steps=5, vectorize=vectorize)


def test_max_steps_guard_charges_before_materializing_lanes():
    """A runaway trip count must raise before allocating the index
    vector — 2 billion lanes would be a 16 GB arange."""
    src = """
    double a[8];
    int main() {
      #pragma omp target teams distribute parallel for
      for (long i = 0; i < 2000000000; i++) {
        a[0 * i] = 1.0;
      }
      return 0;
    }
    """
    # The store subscript (0*i) is not injective in i, so this exact
    # shape is statically ineligible; use an eligible one instead.
    src = src.replace("a[0 * i]", "a[i]")
    with pytest.raises(SimulationError, match="exceeded"):
        run_simulation(src, "<t>", max_steps=1_000_000, vectorize=True)


def test_sequential_reduction_rounding_is_exact():
    """cumsum replays loop-order rounding; pairwise np.sum would not."""
    rng = np.random.default_rng(7)
    values = rng.uniform(-1.0, 1.0, size=512)
    lines = "\n".join(
        f"      data[{i}] = {float(v)!r};" for i, v in enumerate(values)
    )
    src = f"""
    double data[512];
    int main() {{
{lines}
      double total = 0.0;
      #pragma omp target teams distribute parallel for reduction(+:total)
      for (int i = 0; i < 512; i++) {{
        total += data[i];
      }}
      printf("%.17f\\n", total);
      return 0;
    }}
    """
    interp, vec = both(src)
    assert interp.output == vec.output  # all 17 digits
