"""Serve fast path: keep-alive + pipelined HTTP, read timeouts,
streamed/memoized bodies, admission control, eviction, metrics, and
the ``ompdart load`` harness."""

import asyncio
import json
import threading
import time

import pytest

from repro.service.core import PingJobSpec, execute_job, spec_from_dict
from repro.service.loadgen import (
    LOAD_SCHEMA,
    LoadClient,
    LoadConfig,
    gate_load,
    render_load,
    run_load,
)


def _scheduler(**kw):
    from repro.service.scheduler import JobScheduler

    kw.setdefault("workers", 2)
    kw.setdefault("use_processes", False)
    return JobScheduler(**kw)


def _server(scheduler=None, **kw):
    from repro.service.server import JobServer

    return JobServer(scheduler or _scheduler(), port=0, **kw)


async def _raw_exchange(host, port, blob, *, settle=0.0):
    """Write raw bytes, optionally wait, read until EOF."""
    reader, writer = await asyncio.open_connection(host, port)
    if blob:
        writer.write(blob)
        await writer.drain()
    if settle:
        await asyncio.sleep(settle)
    data = await asyncio.wait_for(reader.read(), 30)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return data


class TestPingJobs:
    def test_spec_round_trip_and_key(self):
        spec = spec_from_dict(
            {"kind": "ping", "token": "x", "payload_bytes": 3}
        )
        assert spec == PingJobSpec(token="x", payload_bytes=3)
        assert spec.key() == PingJobSpec(token="x", payload_bytes=3).key()
        assert spec.key() != PingJobSpec(token="y", payload_bytes=3).key()

    def test_execute(self):
        result = execute_job(PingJobSpec(token="t", payload_bytes=4))
        assert result == {"pong": True, "token": "t", "payload": "xxxx"}


class TestKeepAlive:
    def test_sequential_requests_share_one_connection(self):
        async def run():
            server = _server()
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                for _ in range(3):
                    response = await client.request("GET", "/healthz")
                    assert response.status == 200
                    assert response.json() == {"ok": True, "status": "ok"}
                    assert (
                        response.headers.get("connection") == "keep-alive"
                    )
                stats = (await client.request("GET", "/stats")).json()
                assert stats["http"]["connections"] == 1
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_pipelined_requests_answer_in_order(self):
        async def run():
            server = _server()
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                responses = await client.pipeline([
                    ("GET", "/healthz", None),
                    ("POST", "/run", {"kind": "ping", "token": "p"}),
                    ("GET", "/stats", None),
                ])
                assert [r.status for r in responses] == [200, 200, 200]
                assert responses[0].json() == {"ok": True, "status": "ok"}
                assert responses[1].json()["result"]["pong"] is True
                assert responses[2].json()["http"]["connections"] == 1
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_max_requests_per_connection_closes_politely(self):
        async def run():
            server = _server(max_requests=2)
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                first = await client.request("GET", "/healthz")
                assert first.headers.get("connection") == "keep-alive"
                second = await client.request("GET", "/healthz")
                assert second.headers.get("connection") == "close"
                # The client reconnects transparently for the third.
                stats = (await client.request("GET", "/stats")).json()
                assert stats["http"]["connections"] == 2
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_malformed_second_request_closes_cleanly(self):
        async def run():
            server = _server()
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                    b"NOT-HTTP\r\n\r\n"
                )
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), 30)
                writer.close()
                # First response healthy, second is a 400, then EOF.
                assert data.count(b"HTTP/1.1 200") == 1
                assert data.count(b"HTTP/1.1 400") == 1
                assert b"malformed request line" in data
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_http10_defaults_to_close(self):
        async def run():
            server = _server()
            host, port = await server.start()
            try:
                data = await _raw_exchange(
                    host, port,
                    b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n",
                )
                head, _, body = data.partition(b"\r\n\r\n")
                assert b"200" in head.split(b"\r\n")[0]
                assert b"Connection: close" in head
                assert json.loads(body) == {"ok": True, "status": "ok"}
            finally:
                await server.aclose()

        asyncio.run(run())


class TestTimeouts:
    def test_stalled_first_request_gets_408(self):
        async def run():
            server = _server(read_timeout=0.2)
            host, port = await server.start()
            try:
                data = await _raw_exchange(host, port, b"")
                assert b"408" in data.split(b"\r\n")[0]
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_stalled_headers_get_408(self):
        async def run():
            server = _server(read_timeout=0.2)
            host, port = await server.start()
            try:
                # Request line + one header, never finished.
                data = await _raw_exchange(
                    host, port,
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n",
                )
                assert b"408" in data.split(b"\r\n")[0]
                assert b"timed out" in data
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_stalled_body_gets_408(self):
        async def run():
            server = _server(read_timeout=0.2)
            host, port = await server.start()
            try:
                data = await _raw_exchange(
                    host, port,
                    b"POST /run HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 100\r\n\r\nshort",
                )
                assert b"408" in data.split(b"\r\n")[0]
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_idle_keepalive_closes_quietly(self):
        async def run():
            server = _server(idle_timeout=0.2)
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                assert (await client.request("GET", "/healthz")).status == 200
                # Idle past the deadline: the server closes without a
                # 408 (nothing of a second request ever arrived).
                data = await asyncio.wait_for(client._reader.read(), 30)
                assert data == b""
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())


class TestAdmissionControl:
    def test_429_when_saturated_and_dedup_still_admitted(self, monkeypatch):
        release = threading.Event()
        monkeypatch.setattr(
            "repro.service.scheduler.execute_job",
            lambda spec: release.wait(timeout=30) and {"ok": True},
        )

        async def run():
            server = _server(_scheduler(max_queue=1))
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                first = await client.request(
                    "POST", "/jobs", {"kind": "ping", "token": "b1"}
                )
                assert first.status == 202
                key = first.json()["job"]
                # A distinct job is rejected while the queue is full...
                rejected = await client.request(
                    "POST", "/jobs", {"kind": "ping", "token": "b2"}
                )
                assert rejected.status == 429
                assert int(rejected.headers["retry-after"]) >= 1
                assert "saturated" in rejected.json()["error"]
                # ...but a duplicate coalesces (no new load) and is
                # always admitted.
                dedup = await client.request(
                    "POST", "/jobs", {"kind": "ping", "token": "b1"}
                )
                assert dedup.status == 202
                assert dedup.json()["deduped"] is True
                release.set()
                done = await client.request("GET", f"/jobs/{key}?wait=1")
                assert done.json()["state"] == "done"
                stats = (await client.request("GET", "/stats")).json()
                assert stats["rejected"] == 1
                assert stats["max_queue"] == 1
                # Capacity freed: new work is admitted again.
                after = await client.request(
                    "POST", "/jobs", {"kind": "ping", "token": "b3"}
                )
                assert after.status == 202
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_soft_job_timeout_fails_job_not_server(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.scheduler.execute_job",
            lambda spec: time.sleep(1.0) or {"ok": True},
        )

        async def run():
            server = _server(_scheduler(job_timeout=0.1))
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                response = await client.request(
                    "POST", "/run", {"kind": "ping", "token": "slow"}
                )
                assert response.status == 500
                assert "timed out" in response.json()["error"]
                stats = (await client.request("GET", "/stats")).json()
                assert stats["timed_out"] == 1
                # The server is still healthy.
                assert (await client.request("GET", "/healthz")).status == 200
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())


class TestEviction:
    def test_evicted_jobs_answer_410(self):
        async def run():
            server = _server(_scheduler(max_finished=0))
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                response = await client.request(
                    "POST", "/run", {"kind": "ping", "token": "e1"}
                )
                assert response.status == 200
                key = response.json()["job"]
                gone = await client.request("GET", f"/jobs/{key}")
                assert gone.status == 410
                assert "evicted" in gone.json()["error"]
                # Unknown keys are still a plain 404.
                missing = await client.request("GET", "/jobs/nope")
                assert missing.status == 404
                stats = (await client.request("GET", "/stats")).json()
                assert stats["evicted"] >= 1
                # Resubmitting the spec revives the key as a new job.
                again = await client.request(
                    "POST", "/run", {"kind": "ping", "token": "e1"}
                )
                assert again.status == 200
                assert again.json()["job"] == key
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_lru_retention_bound(self):
        async def run():
            async with _scheduler(max_finished=2) as sched:
                keys = []
                for i in range(4):
                    job = await sched.submit(PingJobSpec(token=f"k{i}"))
                    await asyncio.shield(job.future)
                    keys.append(job.key)
                # Let the _run tasks record their finishes.
                await asyncio.sleep(0)
                assert sched.get(keys[0]) is None
                assert sched.was_evicted(keys[0])
                assert sched.get(keys[3]) is not None
                assert sched.stats()["evicted"] == 2
                assert len(sched.jobs()) == 2

        asyncio.run(run())

    def test_ttl_eviction(self):
        async def run():
            async with _scheduler(finished_ttl=0.0) as sched:
                job = await sched.submit(PingJobSpec(token="ttl"))
                await asyncio.shield(job.future)
                await asyncio.sleep(0.01)
                # The next finish sweep evicts expired entries.
                job2 = await sched.submit(PingJobSpec(token="ttl2"))
                await asyncio.shield(job2.future)
                await asyncio.sleep(0.01)
                assert sched.was_evicted(job.key)

        asyncio.run(run())


class TestStreamingAndMemoization:
    def test_streamed_and_buffered_bodies_are_byte_identical(self):
        async def run():
            server = _server(stream_threshold=1000)
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                response = await client.request(
                    "POST", "/run",
                    {"kind": "ping", "token": "big", "payload_bytes": 50000},
                )
                assert response.status == 200
                assert (
                    response.headers.get("transfer-encoding") == "chunked"
                )
                key = response.json()["job"]
                chunked = await client.request("GET", f"/jobs/{key}")
                assert (
                    chunked.headers.get("transfer-encoding") == "chunked"
                )
                # HTTP/1.0 cannot take chunked: same resource goes out
                # buffered with a Content-Length — byte-identical.
                data = await _raw_exchange(
                    host, port,
                    f"GET /jobs/{key} HTTP/1.0\r\nHost: t\r\n\r\n".encode(),
                )
                head, _, buffered = data.partition(b"\r\n\r\n")
                assert b"Content-Length" in head
                assert b"Transfer-Encoding" not in head
                assert buffered == chunked.body
                stats = (await client.request("GET", "/stats")).json()
                assert stats["http"]["streamed_responses"] >= 2
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_result_bodies_encode_once(self):
        async def run():
            server = _server()
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                spec = {"kind": "ping", "token": "memo", "payload_bytes": 64}
                bodies = []
                for _ in range(3):
                    response = await client.request("POST", "/run", spec)
                    assert response.status == 200
                    bodies.append(response.json()["result"])
                assert bodies[0] == bodies[1] == bodies[2]
                key = (await client.request("POST", "/run", spec)).json()["job"]
                await client.request("GET", f"/jobs/{key}")
                stats = (await client.request("GET", "/stats")).json()
                assert stats["http"]["result_cache_misses"] == 1
                assert stats["http"]["result_cache_hits"] >= 3
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())


class TestMetricsEndpoint:
    def test_prometheus_text(self):
        async def run():
            server = _server()
            host, port = await server.start()
            client = LoadClient(host, port)
            try:
                await client.request("GET", "/healthz")
                await client.request(
                    "POST", "/run", {"kind": "ping", "token": "m"}
                )
                response = await client.request("GET", "/metrics")
                assert response.status == 200
                assert response.headers["content-type"].startswith(
                    "text/plain"
                )
                text = response.body.decode()
                assert "# TYPE ompdart_http_requests_total counter" in text
                assert (
                    'ompdart_http_requests_total{route="/healthz",'
                    'method="GET",status="200"} 1' in text
                )
                assert "ompdart_http_request_seconds_bucket" in text
                assert "ompdart_queue_depth 0" in text
                assert (
                    'ompdart_job_duration_seconds_count{kind="ping",'
                    'outcome="done"} 1' in text
                )
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())


class TestLoadHarness:
    def test_load_run_emits_artifact_with_speedup(self):
        async def run():
            server = _server()
            host, port = await server.start()
            try:
                config = LoadConfig(
                    host=host, port=port, clients=3, requests=30,
                    mix={"ping": 3, "stats": 1, "jobs": 1},
                    pipeline_depth=2,
                )
                return await run_load(config, modes=("close", "keepalive"))
            finally:
                await server.aclose()

        payload = asyncio.run(run())
        assert payload["schema"] == LOAD_SCHEMA
        assert set(payload["modes"]) == {"close", "keepalive"}
        for result in payload["modes"].values():
            assert result["failed"] == 0
            assert result["throughput_rps"] > 0
            assert 0 <= result["p50_s"] <= result["p99_s"] <= result["max_s"]
        assert payload["speedup_x"] is not None
        assert "methodology" in payload
        assert gate_load(payload) == []
        assert "keep-alive speedup" in render_load(payload)

    def test_gate_flags_failures_budget_and_regressions(self):
        good = {
            "schema": LOAD_SCHEMA,
            "modes": {
                "keepalive": {
                    "failed": 0, "throughput_rps": 100.0,
                    "p50_s": 0.01, "p99_s": 0.05,
                },
            },
        }
        assert gate_load(good) == []
        assert gate_load(good, max_p99=0.01) != []
        bad = {
            "schema": LOAD_SCHEMA,
            "modes": {
                "keepalive": {
                    "failed": 2, "throughput_rps": 10.0,
                    "p50_s": 0.02, "p99_s": 0.5,
                },
            },
        }
        problems = gate_load(bad, baseline=good, tolerance=0.25)
        assert any("failed request" in p for p in problems)
        assert any("throughput" in p for p in problems)
        assert any("p99" in p for p in problems)
        assert gate_load({"schema": LOAD_SCHEMA}) != []

    def test_cli_parser_and_validation(self, capsys):
        from repro.cli import build_load_arg_parser, main

        args = build_load_arg_parser().parse_args([])
        assert args.clients == 8
        assert args.mode == "both"
        assert main(["load", "--clients", "0"]) == 2
        assert "--clients" in capsys.readouterr().err
        assert main(["load", "--mix", "ping=x"]) == 2

    def test_cli_unreachable_server_exits_2(self, capsys):
        from repro.cli import main

        # Port 1 on localhost: connection refused, not a hang.
        assert main([
            "load", "--port", "1", "--clients", "1", "--requests", "1",
            "--mode", "keepalive",
        ]) == 2
        assert "cannot reach" in capsys.readouterr().err


class TestLoadHistory:
    @staticmethod
    def _load_artifact(tmp_path, name, p50, p99):
        payload = {
            "schema": LOAD_SCHEMA,
            "modes": {
                "keepalive": {
                    "failed": 0, "throughput_rps": 500.0,
                    "p50_s": p50, "p99_s": p99,
                },
                "close": {
                    "failed": 0, "throughput_rps": 100.0,
                    "p50_s": p50 * 3, "p99_s": p99 * 3,
                },
            },
        }
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_bench_history_folds_load_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        old = self._load_artifact(tmp_path, "old.json", 0.010, 0.080)
        new = self._load_artifact(tmp_path, "new.json", 0.002, 0.020)
        assert main(["bench-history", old, new]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "keepalive" in out and "close" in out
        assert "p50" in out and "p99" in out
        assert "80.0" in out and "20.0" in out  # p99 ms cells
        # Latency percentiles don't get a (total) row.
        assert "(total)" not in out

    def test_suite_and_load_artifacts_mix(self, tmp_path, capsys):
        from repro.cli import main

        suite = {
            "schema": "ompdart-suite-perf/4",
            "results": {
                "a100-pcie4": {
                    "benchmarks": {
                        "nw": {
                            "variants": {
                                "ompdart": {"sim_wall_s": 0.05},
                            }
                        }
                    }
                }
            },
        }
        suite_path = tmp_path / "suite.json"
        suite_path.write_text(json.dumps(suite))
        load = self._load_artifact(tmp_path, "load.json", 0.010, 0.080)
        assert main(["bench-history", str(suite_path), load]) == 0
        out = capsys.readouterr().out
        assert "a100-pcie4" in out and "serve" in out

    def test_rejects_unknown_schema_still(self, tmp_path):
        from repro.report.history import load_artifact as load_fn

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError):
            load_fn(str(bad))
