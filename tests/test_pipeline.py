"""Tests for the staged pass-manager pipeline and the batch driver.

Covers the architectural contracts: per-pass artifact caching (hit,
miss, invalidation on source or macro change), equality of batch and
serial results, deterministic ordering under ``-j 4``, the tool facade
surfacing cache hits with measurably lower elapsed time, and the
``ompdart batch`` CLI mode.
"""

import pytest

from repro.core import OMPDart, ToolOptions, transform_source
from repro.diagnostics import ToolError
from repro.pipeline import (
    ArtifactCache,
    BatchRunStats,
    DEFAULT_PASSES,
    PassManager,
    transform_batch,
)
from repro.pipeline.cache import MISS, fingerprint

SRC = """
int a[16];
int main() {
  a[0] = 1;
  #pragma omp target
  for (int i = 0; i < 16; i++) a[i] += i;
  return a[0];
}
"""

SRC_CHANGED = SRC.replace("a[i] += i;", "a[i] += 2 * i;")

BAD_SRC = """
int a[4];
int main() {
  #pragma omp target
  for (int i = 0; i < 4; i++) a[i] = i;
  #pragma omp target update from(a)
  return 0;
}
"""

MACRO_SRC = """
int a[N];
int main() {
  a[0] = 1;
  #pragma omp target
  for (int i = 0; i < N; i++) a[i] += i;
  return a[0];
}
"""


class TestArtifactCache:
    def test_get_put_roundtrip(self):
        cache = ArtifactCache()
        key = fingerprint("source", "file.c")
        assert cache.get("parse", key) is MISS
        cache.put("parse", key, {"tu": 1})
        assert cache.get("parse", key) == {"tu": 1}
        assert cache.stats["parse"].hits == 1
        assert cache.stats["parse"].misses == 1

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        for i in range(3):
            cache.put("p", str(i), i)
        assert cache.get("p", "0") is MISS  # evicted
        assert cache.get("p", "2") == 2

    def test_disk_spill_survives_new_cache(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.put("parse", "k", [1, 2, 3])
        fresh = ArtifactCache(disk_dir=tmp_path)
        assert fresh.get("parse", "k") == [1, 2, 3]

    def test_fingerprint_sensitivity(self):
        assert fingerprint("a", "b") != fingerprint("ab", "")
        assert fingerprint("a", {"N": 1}) != fingerprint("a", {"N": 2})


class TestPassManager:
    def test_default_chain_names(self):
        names = [p.name for p in DEFAULT_PASSES]
        assert names == [
            "preprocess", "parse", "codegen", "constraints", "effects",
            "cfg", "plan", "rewrite",
        ]

    def test_first_run_misses_second_hits(self):
        manager = PassManager()
        ctx1 = manager.run(SRC, "t.c")
        ctx2 = manager.run(SRC, "t.c")
        assert set(ctx1.cache_events.values()) == {"miss"}
        assert set(ctx2.cache_events.values()) == {"hit"}
        assert ctx1.artifact("rewrite") == ctx2.artifact("rewrite")

    def test_source_change_invalidates(self):
        manager = PassManager()
        manager.run(SRC, "t.c")
        ctx = manager.run(SRC_CHANGED, "t.c")
        assert set(ctx.cache_events.values()) == {"miss"}

    def test_macro_change_invalidates(self):
        manager = PassManager()
        manager.run(
            MACRO_SRC, "t.c", ToolOptions(predefined_macros={"N": 16})
        )
        ctx2 = manager.run(
            MACRO_SRC, "t.c", ToolOptions(predefined_macros={"N": 32})
        )
        assert set(ctx2.cache_events.values()) == {"miss"}
        assert "map(tofrom: a)" in ctx2.artifact("rewrite")
        ctx3 = manager.run(
            MACRO_SRC, "t.c", ToolOptions(predefined_macros={"N": 16})
        )
        assert set(ctx3.cache_events.values()) == {"hit"}

    def test_run_until_parse_only(self):
        manager = PassManager()
        tu = manager.parse(SRC, "t.c")
        assert tu.lookup_function("main") is not None
        # Only the prefix passes ran.
        assert "parse" in manager.cache.stats
        assert "plan" not in manager.cache.stats

    def test_parse_artifact_shared_with_full_run(self):
        manager = PassManager()
        tu = manager.parse(SRC, "t.c")
        ctx = manager.run(SRC, "t.c")
        assert ctx.artifact("parse") is tu

    def test_constraint_error_raised_on_hit_and_miss(self):
        manager = PassManager()
        with pytest.raises(ToolError):
            manager.run(BAD_SRC, "bad.c")
        with pytest.raises(ToolError):  # cached diagnostics still raise
            manager.run(BAD_SRC, "bad.c")

    def test_timings_recorded_per_pass(self):
        ctx = PassManager().run(SRC, "t.c")
        assert set(ctx.timings) == {p.name for p in DEFAULT_PASSES}
        assert all(t >= 0.0 for t in ctx.timings.values())


class TestToolFacadeCaching:
    def test_repeated_run_reports_cache_hit_and_is_faster(self):
        tool = OMPDart()
        first = tool.run(SRC, "t.c")
        second = tool.run(SRC, "t.c")
        assert first.cache_hits == 0
        assert second.cache_hits == len(DEFAULT_PASSES)
        assert second.output_source == first.output_source
        assert second.elapsed_seconds < first.elapsed_seconds

    def test_report_contains_overhead_breakdown(self):
        res = transform_source(SRC, "t.c")
        report = res.report()
        assert "pass overhead" in report
        for name in ("parse", "plan", "rewrite"):
            assert name in report

    def test_shared_pipeline_across_instances(self):
        manager = PassManager()
        OMPDart(pipeline=manager).run(SRC, "t.c")
        res = OMPDart(pipeline=manager).run(SRC, "t.c")
        assert res.cache_hits == len(DEFAULT_PASSES)


def _variant(i):
    """A distinct-but-valid translation unit per index."""
    return SRC.replace("a[i] += i;", f"a[i] += i + {i};"), f"v{i}.c"


class TestBatchDriver:
    def test_batch_matches_serial(self):
        items = [_variant(i) for i in range(6)]
        serial = transform_batch(items, jobs=1)
        parallel = transform_batch(items, jobs=4)
        assert [o.filename for o in parallel] == [f"v{i}.c" for i in range(6)]
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.output_source == p.output_source
            assert s.directive_count == p.directive_count

    def test_deterministic_ordering_under_j4(self):
        items = [_variant(i) for i in range(8)]
        runs = [transform_batch(items, jobs=4) for _ in range(2)]
        orders = [[o.filename for o in run] for run in runs]
        assert orders[0] == orders[1] == [f"v{i}.c" for i in range(8)]
        assert [o.output_source for o in runs[0]] == [
            o.output_source for o in runs[1]
        ]

    def test_serial_batch_dedups_identical_content(self):
        # Identical content dispatches once; the duplicates share the
        # representative's result instead of re-running the pipeline
        # (they used to re-run it per copy, cache hits or not).
        items = [(SRC, "same.c")] * 3
        outcomes = transform_batch(items, jobs=1)
        assert all(o.ok for o in outcomes)
        assert set(outcomes[0].cache_events.values()) == {"miss"}
        assert outcomes[1] is outcomes[0]
        assert outcomes[2] is outcomes[0]

    def test_serial_batch_dedups_across_filenames(self):
        items = [(SRC, "a.c"), (SRC, "b.c"), (SRC, "c.c")]
        stats = BatchRunStats()
        outcomes = transform_batch(items, jobs=1, run_stats=stats)
        assert all(o.ok for o in outcomes)
        assert stats.unique_inputs == 1
        assert stats.deduped_inputs == 2
        assert outcomes[0].deduped_from is None
        assert [o.filename for o in outcomes] == ["a.c", "b.c", "c.c"]
        assert outcomes[1].deduped_from == "a.c"
        assert outcomes[2].deduped_from == "a.c"
        assert outcomes[1].output_source == outcomes[0].output_source
        # Only the representative actually ran the pipeline.
        assert set(outcomes[0].cache_events.values()) == {"miss"}
        assert outcomes[1].cache_events == outcomes[0].cache_events

    def test_dedup_retags_diagnostics_with_duplicate_filename(self):
        items = [(BAD_SRC, "first.c"), (BAD_SRC, "second.c")]
        first, second = transform_batch(items, jobs=1)
        assert not first.ok and not second.ok
        assert second.deduped_from == "first.c"
        assert all(d.startswith("second.c:") for d in second.diagnostics)
        assert all(d.startswith("first.c:") for d in first.diagnostics)

    def test_unchanged_input_not_marked_changed(self):
        # No kernels -> rewrite equals input -> changed must be False.
        (outcome,) = transform_batch([("int main() { return 0; }\n", "p.c")])
        assert outcome.ok
        assert not outcome.changed
        assert outcome.directive_count == 0

    def test_error_input_reports_not_raises(self):
        items = [(SRC, "ok.c"), (BAD_SRC, "bad.c")]
        ok, bad = transform_batch(items, jobs=1)
        assert ok.ok
        assert not bad.ok
        assert "constraint" in (bad.error or "")

    def test_disk_cache_dir(self, tmp_path):
        items = [_variant(i) for i in range(2)]
        transform_batch(items, jobs=1, cache_dir=str(tmp_path))
        assert list(tmp_path.glob("*.art"))
        again = transform_batch(items, jobs=1, cache_dir=str(tmp_path))
        assert set(again[0].cache_events.values()) == {"hit"}

    def test_prewarm_loads_spills_into_memory(self, tmp_path):
        from repro.pipeline.cache import ArtifactCache

        items = [_variant(i) for i in range(2)]
        transform_batch(items, jobs=1, cache_dir=str(tmp_path))
        spills = len(list(tmp_path.glob("*.art")))
        assert spills > 0
        cold = ArtifactCache(disk_dir=str(tmp_path))
        assert len(cold) == 0
        loaded = cold.prewarm()
        assert loaded == spills
        assert len(cold) == spills
        # pre-warming is not a lookup: no hit/miss counters moved
        assert not cold.stats
        # warmed entries answer from memory (no disk bytes read)
        again = transform_batch(
            items, jobs=1,
            cache=cold,
        )
        assert set(again[0].cache_events.values()) == {"hit"}
        assert all(s.disk_bytes_read == 0 for s in cold.stats.values())

    def test_prewarm_memory_only_cache_is_a_noop(self):
        from repro.pipeline.cache import ArtifactCache

        assert ArtifactCache().prewarm() == 0

    def test_prewarm_respects_limit_and_quarantines_corrupt(self, tmp_path):
        from repro.pipeline.cache import ArtifactCache

        items = [_variant(i) for i in range(3)]
        transform_batch(items, jobs=1, cache_dir=str(tmp_path))
        (tmp_path / "parse-deadbeef.art").write_bytes(b"not a pickle")
        cache = ArtifactCache(disk_dir=str(tmp_path))
        assert cache.prewarm(limit=2) <= 2
        cache2 = ArtifactCache(disk_dir=str(tmp_path))
        total = cache2.prewarm()
        # The corrupt spill was quarantined (renamed *.art.bad) by the
        # first prewarm; every surviving spill loads.
        assert (tmp_path / "parse-deadbeef.art.bad").exists()
        assert not (tmp_path / "parse-deadbeef.art").exists()
        assert total == len(list(tmp_path.glob("*.art")))

    def test_worker_init_prewarms(self, tmp_path):
        from repro.pipeline import batch as batch_mod

        items = [_variant(i) for i in range(2)]
        transform_batch(items, jobs=1, cache_dir=str(tmp_path))
        batch_mod._WORKER_MANAGERS.clear()
        try:
            batch_mod._worker_init(str(tmp_path))
            manager = batch_mod._WORKER_MANAGERS[str(tmp_path)]
            assert len(manager.cache) == len(list(tmp_path.glob("*.art")))
        finally:
            batch_mod._WORKER_MANAGERS.clear()


class TestRunAllBatch:
    def test_parallel_benchmarks_match_serial(self):
        from repro.suite.runner import _benchmark_job, run_benchmark
        from repro.pipeline.batch import parallel_map
        from repro.runtime.costmodel import A100_PCIE4

        names = ["accuracy", "nw"]
        serial = [run_benchmark(n) for n in names]
        parallel = parallel_map(
            _benchmark_job,
            [(n, A100_PCIE4, True, True) for n in names],
            jobs=2,
        )
        for s, p in zip(serial, parallel):
            assert s.benchmark.name == p.benchmark.name
            assert s.unoptimized.stats == p.unoptimized.stats
            assert s.ompdart.stats == p.ompdart.stats
            assert s.expert.stats == p.expert.stats
            assert s.transform.output_source == p.transform.output_source
            assert s.unoptimized.output == p.unoptimized.output


class TestBatchCLI:
    def test_batch_mode_transforms_in_order(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        for i in range(3):
            src, _ = _variant(i)
            path = tmp_path / f"in{i}.c"
            path.write_text(src)
            paths.append(str(path))
        outdir = tmp_path / "out"
        rc = main(["batch", *paths, "-j", "2", "-o", str(outdir)])
        assert rc == 0
        out = capsys.readouterr().out
        positions = [out.index(f"in{i}.c") for i in range(3)]
        assert positions == sorted(positions)
        for i in range(3):
            assert "map(tofrom: a)" in (outdir / f"in{i}.c").read_text()

    def test_batch_mode_failure_exit_code(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.c"
        bad.write_text(BAD_SRC)
        assert main(["batch", str(bad)]) == 1

    def test_batch_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["batch", str(tmp_path / "absent.c")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestCLIAdditions:
    def test_version_flag(self, capsys):
        from repro.cli import main
        from repro._version import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_dump_ast_parse_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "syntax.c"
        bad.write_text("int main( {\n")
        assert main([str(bad), "--dump-ast"]) == 3
        assert "parse error" in capsys.readouterr().err

    def test_dump_cfg_parse_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "syntax.c"
        bad.write_text("double f( {}\n")
        assert main([str(bad), "--dump-cfg"]) == 3


class TestSingleCoreVariantPoolBypass:
    """On a single-core host the 3-worker variant pool is skipped: fork
    latency plus per-worker re-parsing buys nothing, and the serial
    path shares one pass manager (and its parse artifacts)."""

    def test_variant_pool_declines_on_one_core(self, monkeypatch):
        from repro.suite import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(runner, "_VARIANT_POOL", None)
        assert runner._variant_pool() is None
        # The decision is latched: later calls stay on the serial path
        # without re-probing the host.
        assert runner._VARIANT_POOL is False
        assert runner._variant_pool() is None

    def test_cpu_count_none_counts_as_one_core(self, monkeypatch):
        from repro.suite import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: None)
        monkeypatch.setattr(runner, "_VARIANT_POOL", None)
        assert runner._variant_pool() is None

    def test_benchmark_runs_serial_when_pool_bypassed(self, monkeypatch):
        from repro.suite import runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(runner, "_VARIANT_POOL", None)
        run = runner.run_benchmark("accuracy", concurrent_variants=True)
        assert run.outputs_match
        # The pool was asked for and declined, not silently unused.
        assert runner._VARIANT_POOL is False

    def test_discard_variant_pool_latches_serial_fallback(self, monkeypatch):
        from repro.suite import runner

        monkeypatch.setattr(runner, "_VARIANT_POOL", None)
        runner._discard_variant_pool()
        assert runner._VARIANT_POOL is False
        assert runner._variant_pool() is None
