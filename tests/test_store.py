"""Shared cross-process artifact store: SHM index, counters, and the
batch driver's mid-run cross-worker sharing."""

import pytest

from repro.pipeline.cache import ArtifactCache
from repro.pipeline.store import SharedArtifactStore


@pytest.fixture
def store(tmp_path):
    store = SharedArtifactStore.create(tmp_path)
    if store is None:
        pytest.skip("shared memory unavailable on this host")
    yield store
    store.close()


class TestStoreIndex:
    def test_publish_then_lookup_same_process(self, store):
        assert store.lookup("parse", "k1") == (False, False)
        store.publish("parse", "k1", 100)
        published, cross = store.lookup("parse", "k1")
        assert published and not cross

    def test_cross_worker_attribution(self, store, tmp_path):
        sibling = SharedArtifactStore.attach(tmp_path, store.name)
        assert sibling is not None
        # Simulate a different worker process: distinct pid.
        sibling._pid = store._pid + 1
        store.publish("parse", "k1", 64)
        published, cross = sibling.lookup("parse", "k1")
        assert published and cross
        stats = store.stats()
        assert stats.passes["parse"].cross_worker_hits == 1
        assert stats.passes["parse"].hits == 1
        assert stats.passes["parse"].writes == 1
        assert stats.cross_worker_hits == 1
        sibling.close()

    def test_counters_aggregate_bytes(self, store):
        store.publish("plan", "a", 10, baseline=30)
        store.publish("plan", "b", 5, baseline=12)
        store.lookup("plan", "missing")
        stats = store.stats().passes["plan"]
        assert stats.bytes_written == 15
        assert stats.baseline_bytes == 42
        assert stats.misses == 1

    def test_attach_bad_name_returns_none(self, tmp_path):
        assert SharedArtifactStore.attach(tmp_path, "ompdart-nonexistent") is None

    def test_close_is_idempotent(self, tmp_path):
        store = SharedArtifactStore.create(tmp_path)
        if store is None:
            pytest.skip("shared memory unavailable on this host")
        store.close()
        store.close()


class TestCacheStoreIntegration:
    def test_put_publishes_and_get_attributes_cross_hits(
        self, store, tmp_path
    ):
        writer = ArtifactCache(disk_dir=tmp_path, store=store)
        writer.put("rewrite", "k", "artifact-body")

        sibling_store = SharedArtifactStore.attach(tmp_path, store.name)
        sibling_store._pid = store._pid + 1
        reader = ArtifactCache(disk_dir=tmp_path, store=sibling_store)
        value, origin = reader.lookup("rewrite", "k")
        assert value == "artifact-body"
        assert origin == "store"
        assert store.stats().passes["rewrite"].cross_worker_hits == 1
        # Second lookup answers from the reader's memory: no new hit.
        value, origin = reader.lookup("rewrite", "k")
        assert origin == "memory"
        assert store.stats().passes["rewrite"].cross_worker_hits == 1
        sibling_store.close()

    def test_same_process_disk_hit_is_not_cross(self, store, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path, store=store)
        cache.put("rewrite", "k", "x")
        fresh = ArtifactCache(disk_dir=tmp_path, store=store)
        value, origin = fresh.lookup("rewrite", "k")
        assert value == "x"
        assert origin == "disk"

    def test_measure_baseline_feeds_store_counters(self, store, tmp_path):
        cache = ArtifactCache(
            disk_dir=tmp_path, store=store, measure_baseline=True
        )
        cache.put("rewrite", "k", "y" * 4000)
        stats = store.stats().passes["rewrite"]
        assert stats.bytes_written > 0
        assert stats.baseline_bytes > 0
        assert cache.stats["rewrite"].baseline_bytes_written == stats.baseline_bytes


BENCH_SRC = """
int data[128];
int main() {
  data[1] = 2;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 128; i++) data[i] = data[i] + %d;
  return data[1];
}
"""


class TestBatchCrossWorkerSharing:
    def test_duplicate_inputs_hit_across_workers_mid_run(self, tmp_path):
        """The acceptance path: -j 4 over a corpus with duplicates.

        Originals first, duplicates (same path => same content key)
        last: by the time a duplicate is pulled, its original has been
        computed — on a different worker with probability 3/4 per pair,
        so across nine pairs at least one cross-worker store hit is
        effectively certain.
        """
        from repro.pipeline.batch import BatchRunStats, transform_paths

        cache_dir = tmp_path / "cache"
        paths = []
        for i in range(9):
            p = tmp_path / f"input_{i}.c"
            p.write_text(BENCH_SRC % i)
            paths.append(str(p))
        run_stats = BatchRunStats()
        outcomes = transform_paths(
            paths + paths,  # duplicates trail the originals
            jobs=4,
            cache_dir=str(cache_dir),
            run_stats=run_stats,
        )
        assert all(o.ok for o in outcomes)
        # Deterministic halves: duplicate outcomes mirror the originals.
        for original, duplicate in zip(outcomes[:9], outcomes[9:]):
            assert duplicate.output_source == original.output_source
        if run_stats.store is None:
            pytest.skip("shared memory unavailable on this host")
        assert run_stats.store.cross_worker_hits > 0
        assert run_stats.store.bytes_written > 0

    def test_batch_report_cli_prints_store_and_reduction(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        paths = []
        for i in range(3):
            p = tmp_path / f"input_{i}.c"
            p.write_text(BENCH_SRC % i)
            paths.append(str(p))
        rc = main(
            ["batch", *paths, *paths, "-j", "2",
             "--cache-dir", str(cache_dir), "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "store" in out
        assert "cross-worker hit(s)" in out
        assert "compact spills" in out and "legacy whole-object" in out

    def test_serial_report_quotes_reduction_from_cache(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "input.c"
        p.write_text(BENCH_SRC % 1)
        rc = main(
            ["batch", str(p), "--cache-dir", str(tmp_path / "c"), "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "compact spills" in out and "% smaller" in out
