"""Shared cross-process artifact store: SHM index, counters, and the
batch driver's mid-run cross-worker sharing."""

import os

import pytest

from repro.pipeline.cache import ArtifactCache
from repro.pipeline.store import (
    GC_ROW,
    SharedArtifactStore,
    gc_spills,
    spill_stats,
)


@pytest.fixture
def store(tmp_path):
    store = SharedArtifactStore.create(tmp_path)
    if store is None:
        pytest.skip("shared memory unavailable on this host")
    yield store
    store.close()


class TestStoreIndex:
    def test_publish_then_lookup_same_process(self, store):
        assert store.lookup("parse", "k1") == (False, False)
        store.publish("parse", "k1", 100)
        published, cross = store.lookup("parse", "k1")
        assert published and not cross

    def test_cross_worker_attribution(self, store, tmp_path):
        sibling = SharedArtifactStore.attach(tmp_path, store.name)
        assert sibling is not None
        # Simulate a different worker process: distinct pid.
        sibling._pid = store._pid + 1
        store.publish("parse", "k1", 64)
        published, cross = sibling.lookup("parse", "k1")
        assert published and cross
        stats = store.stats()
        assert stats.passes["parse"].cross_worker_hits == 1
        assert stats.passes["parse"].hits == 1
        assert stats.passes["parse"].writes == 1
        assert stats.cross_worker_hits == 1
        sibling.close()

    def test_counters_aggregate_bytes(self, store):
        store.publish("plan", "a", 10, baseline=30)
        store.publish("plan", "b", 5, baseline=12)
        store.lookup("plan", "missing")
        stats = store.stats().passes["plan"]
        assert stats.bytes_written == 15
        assert stats.baseline_bytes == 42
        assert stats.misses == 1

    def test_attach_bad_name_returns_none(self, tmp_path):
        assert SharedArtifactStore.attach(tmp_path, "ompdart-nonexistent") is None

    def test_close_is_idempotent(self, tmp_path):
        store = SharedArtifactStore.create(tmp_path)
        if store is None:
            pytest.skip("shared memory unavailable on this host")
        store.close()
        store.close()


class TestCacheStoreIntegration:
    def test_put_publishes_and_get_attributes_cross_hits(
        self, store, tmp_path
    ):
        writer = ArtifactCache(disk_dir=tmp_path, store=store)
        writer.put("rewrite", "k", "artifact-body")

        sibling_store = SharedArtifactStore.attach(tmp_path, store.name)
        sibling_store._pid = store._pid + 1
        reader = ArtifactCache(disk_dir=tmp_path, store=sibling_store)
        value, origin = reader.lookup("rewrite", "k")
        assert value == "artifact-body"
        assert origin == "store"
        assert store.stats().passes["rewrite"].cross_worker_hits == 1
        # Second lookup answers from the reader's memory: no new hit.
        value, origin = reader.lookup("rewrite", "k")
        assert origin == "memory"
        assert store.stats().passes["rewrite"].cross_worker_hits == 1
        sibling_store.close()

    def test_same_process_disk_hit_is_not_cross(self, store, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path, store=store)
        cache.put("rewrite", "k", "x")
        fresh = ArtifactCache(disk_dir=tmp_path, store=store)
        value, origin = fresh.lookup("rewrite", "k")
        assert value == "x"
        assert origin == "disk"

    def test_measure_baseline_feeds_store_counters(self, store, tmp_path):
        cache = ArtifactCache(
            disk_dir=tmp_path, store=store, measure_baseline=True
        )
        cache.put("rewrite", "k", "y" * 4000)
        stats = store.stats().passes["rewrite"]
        assert stats.bytes_written > 0
        assert stats.baseline_bytes > 0
        assert cache.stats["rewrite"].baseline_bytes_written == stats.baseline_bytes


BENCH_SRC = """
int data[128];
int main() {
  data[1] = 2;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < 128; i++) data[i] = data[i] + %d;
  return data[1];
}
"""


class TestBatchCrossWorkerSharing:
    def test_duplicate_inputs_hit_across_workers_mid_run(self, tmp_path):
        """The acceptance path: -j 4 over a corpus with duplicates.

        Originals first, duplicates (same path => same content key)
        last: by the time a duplicate is pulled, its original has been
        computed — on a different worker with probability 3/4 per pair,
        so across nine pairs at least one cross-worker store hit is
        effectively certain.
        """
        from repro.pipeline.batch import BatchRunStats, transform_paths

        cache_dir = tmp_path / "cache"
        paths = []
        for i in range(9):
            p = tmp_path / f"input_{i}.c"
            p.write_text(BENCH_SRC % i)
            paths.append(str(p))
        run_stats = BatchRunStats()
        # dedup=False forces every copy through a worker: this test is
        # about the *store* tier picking up mid-run duplicates, which
        # submit-time pre-dedup would otherwise collapse first.
        outcomes = transform_paths(
            paths + paths,  # duplicates trail the originals
            jobs=4,
            cache_dir=str(cache_dir),
            run_stats=run_stats,
            dedup=False,
        )
        assert all(o.ok for o in outcomes)
        # Deterministic halves: duplicate outcomes mirror the originals.
        for original, duplicate in zip(outcomes[:9], outcomes[9:]):
            assert duplicate.output_source == original.output_source
        if run_stats.store is None:
            pytest.skip("shared memory unavailable on this host")
        assert run_stats.store.cross_worker_hits > 0
        assert run_stats.store.bytes_written > 0

    def test_batch_report_cli_prints_store_and_reduction(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        paths = []
        for i in range(3):
            p = tmp_path / f"input_{i}.c"
            p.write_text(BENCH_SRC % i)
            paths.append(str(p))
        rc = main(
            ["batch", *paths, *paths, "-j", "2",
             "--cache-dir", str(cache_dir), "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "store" in out
        assert "cross-worker hit(s)" in out
        assert "compact spills" in out and "legacy whole-object" in out

    def test_serial_report_quotes_reduction_from_cache(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "input.c"
        p.write_text(BENCH_SRC % 1)
        rc = main(
            ["batch", str(p), "--cache-dir", str(tmp_path / "c"), "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "compact spills" in out and "% smaller" in out


class TestSpillGC:
    """Disk-tier GC: size/TTL LRU eviction behind ``ompdart store gc``."""

    @staticmethod
    def _spill(directory, name, size, age_s, *, now=1_000_000.0):
        path = directory / name
        path.write_bytes(b"x" * size)
        os.utime(path, (now - age_s, now - age_s))
        return path

    def test_ttl_evicts_only_spills_past_max_age(self, tmp_path):
        now = 1_000_000.0
        old = self._spill(tmp_path, "parse-old.art", 10, 200, now=now)
        young = self._spill(tmp_path, "parse-new.art", 10, 100, now=now)
        report = gc_spills(tmp_path, max_age_s=150, now=now)
        assert report.ttl_evicted == 1
        assert report.size_evicted == 0
        assert report.evicted_bytes == 10
        assert not old.exists() and young.exists()
        assert report.remaining_files == 1
        assert report.remaining_bytes == 10

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        now = 1_000_000.0
        oldest = self._spill(tmp_path, "parse-a.art", 10, 300, now=now)
        middle = self._spill(tmp_path, "plan-b.art", 10, 200, now=now)
        newest = self._spill(tmp_path, "parse-c.art", 10, 100, now=now)
        report = gc_spills(tmp_path, max_bytes=15, now=now)
        assert report.size_evicted == 2
        assert report.evicted_bytes == 20
        assert not oldest.exists() and not middle.exists()
        assert newest.exists()
        assert report.remaining_bytes == 10

    def test_dry_run_counts_without_unlinking(self, tmp_path):
        now = 1_000_000.0
        spill = self._spill(tmp_path, "parse-a.art", 10, 300, now=now)
        report = gc_spills(tmp_path, max_age_s=150, now=now, dry_run=True)
        assert report.ttl_evicted == 1
        assert report.dry_run
        assert spill.exists()  # nothing actually removed
        assert report.as_dict()["evicted_files"] == 1

    def test_quarantine_and_dead_tmp_always_swept(self, tmp_path):
        bad = tmp_path / "parse-k.art.bad"
        bad.write_bytes(b"corrupt")
        # A dead writer's orphaned tmp, and our own in-progress one.
        dead_tmp = tmp_path / "parse-k.99999999-1.tmp"
        dead_tmp.write_bytes(b"torn")
        live_tmp = tmp_path / f"plan-k.{os.getpid()}-1.tmp"
        live_tmp.write_bytes(b"in progress")
        keeper = self._spill(tmp_path, "parse-keep.art", 10, 0)
        report = gc_spills(tmp_path)  # no bounds: sweep-only
        assert report.quarantine_swept == 1
        assert report.tmp_swept == 1
        assert not bad.exists() and not dead_tmp.exists()
        assert live_tmp.exists() and keeper.exists()
        assert report.ttl_evicted == 0 and report.size_evicted == 0

    def test_spill_stats_census_by_pass(self, tmp_path):
        self._spill(tmp_path, "parse-a.art", 10, 0)
        self._spill(tmp_path, "parse-b.art", 20, 0)
        self._spill(tmp_path, "plan-c.art", 5, 0)
        (tmp_path / "parse-d.art.bad").write_bytes(b"x")
        (tmp_path / "notes.txt").write_text("ignored")
        census = spill_stats(tmp_path)
        assert census["files"] == 3
        assert census["bytes"] == 35
        assert census["quarantined"] == 1
        assert census["by_pass"]["parse"] == {"files": 2, "bytes": 30}
        assert census["by_pass"]["plan"] == {"files": 1, "bytes": 5}


class TestIndexEviction:
    def test_full_probe_window_evicts_lru_instead_of_dropping(
        self, tmp_path
    ):
        store = SharedArtifactStore.create(tmp_path, slots=4)
        if store is None:
            pytest.skip("shared memory unavailable on this host")
        try:
            for i in range(4):
                store.publish("parse", f"k{i}", 10)
            assert store.slots_evicted == 0
            # Keep k1..k3 hot so k0 is the coldest entry.
            for i in range(1, 4):
                assert store.lookup("parse", f"k{i}") == (True, False)
            store.publish("parse", "overflow", 10)
            assert store.slots_evicted == 1
            assert store.health()["slots_evicted"] == 1
            internal = store.stats().internal
            assert internal[GC_ROW].hits == 1  # field 0 = evictions
            # The new publish is indexed; the cold entry gave its slot.
            assert store.lookup("parse", "overflow") == (True, False)
            assert store.lookup("parse", "k0") == (False, False)
        finally:
            store.close()


class TestCacheGC:
    def test_put_triggers_opportunistic_gc_once_bounded(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path, max_disk_bytes=1)
        for i in range(3):
            cache.put("parse", f"g{i}-s0", list(range(50)))
        # Below the sweep cadence nothing has run yet...
        assert cache.evicted_spills == 0
        cache._puts_since_gc = 31  # fast-forward to the cadence edge
        cache.put("parse", "trigger-s0", list(range(50)))
        assert cache.evicted_spills > 0
        assert cache.evicted_spill_bytes > 0

    def test_unbounded_cache_never_sweeps(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache._puts_since_gc = 31
        cache.put("parse", "k-s0", [1, 2, 3])
        assert cache.evicted_spills == 0
        assert len(list(tmp_path.glob("*.art"))) == 1
