"""Tests for the analytic cost model and profiler arithmetic."""

import pytest

from repro.runtime import Profiler, TransferStats
from repro.runtime.costmodel import A100_PCIE4, CostModel


class TestCostModel:
    def test_memcpy_time_components(self):
        cm = CostModel(memcpy_latency_s=1e-5, memcpy_bandwidth_Bps=1e9)
        assert cm.memcpy_time(0) == pytest.approx(1e-5)
        assert cm.memcpy_time(10**9) == pytest.approx(1e-5 + 1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CostModel().memcpy_time(-1)

    def test_kernel_time(self):
        cm = CostModel(kernel_launch_s=5e-6, device_op_s=1e-9)
        assert cm.kernel_time(0) == pytest.approx(5e-6)
        assert cm.kernel_time(10**6) == pytest.approx(5e-6 + 1e-3)

    def test_device_faster_per_op_than_host(self):
        # parallel device beats serial host per work unit — the premise
        # that makes offloading worthwhile at all
        assert A100_PCIE4.device_op_s < A100_PCIE4.host_op_s

    def test_transfer_dominates_small_kernels(self):
        # one 4-byte memcpy must cost more than a small kernel's compute,
        # matching the paper's premise that launches/transfers dominate
        cm = A100_PCIE4
        assert cm.memcpy_time(4) > cm.device_op_s * 100


class TestProfiler:
    def test_memcpy_accounting(self):
        p = Profiler()
        p.record_memcpy("HtoD", 100)
        p.record_memcpy("HtoD", 50)
        p.record_memcpy("DtoH", 10)
        s = p.snapshot()
        assert (s.h2d_calls, s.h2d_bytes) == (2, 150)
        assert (s.d2h_calls, s.d2h_bytes) == (1, 10)
        assert s.total_calls == 3
        assert s.total_bytes == 160

    def test_zero_byte_copies_elided(self):
        p = Profiler()
        p.record_memcpy("HtoD", 0)
        assert p.snapshot().total_calls == 0

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            Profiler().record_memcpy("sideways", 4)

    def test_wall_clock_monotonic(self):
        p = Profiler()
        t0 = p.current_time_s
        p.record_kernel_launch()
        t1 = p.current_time_s
        p.tick_device(1000)
        t2 = p.current_time_s
        p.record_memcpy("DtoH", 4096)
        t3 = p.current_time_s
        assert t0 < t1 < t2 < t3

    def test_snapshot_immutable_view(self):
        p = Profiler()
        p.record_memcpy("HtoD", 8)
        snap = p.snapshot()
        p.record_memcpy("HtoD", 8)
        assert snap.h2d_calls == 1  # snapshot unaffected

    def test_speedup_and_improvement(self):
        fast = TransferStats(1, 1, 8, 8, 0.001, 0.001, 0.001, 1)
        slow = TransferStats(10, 10, 80, 80, 0.01, 0.001, 0.001, 10)
        assert slow.speedup_over(fast) < 1.0
        assert fast.speedup_over(slow) > 1.0
        assert fast.transfer_improvement_over(slow) == pytest.approx(10.0)

    def test_transfer_improvement_zero_guard(self):
        none = TransferStats(0, 0, 0, 0, 0.0, 1.0, 1.0, 0)
        some = TransferStats(1, 0, 8, 0, 0.5, 1.0, 1.0, 1)
        assert none.transfer_improvement_over(some) == float("inf")
        assert none.transfer_improvement_over(none) == 1.0
