"""End-to-end tests of the nine-benchmark evaluation suite.

These are the paper's section VI claims, checked per application:
output equivalence of the three variants, transfer reductions in the
right direction and rough magnitude, and the per-benchmark qualitative
behaviours (firstprivate wins, update placements, lulesh's expert-beating
mappings).
"""

import pytest

from repro.suite import (
    BENCHMARK_ORDER,
    analyze_complexity,
    get_benchmark,
    run_benchmark,
)

# One shared run per benchmark (session-scoped: the simulator is the
# expensive part).
_runs = {}


def run_of(name):
    if name not in _runs:
        _runs[name] = run_benchmark(name)
    return _runs[name]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
class TestAllBenchmarks:
    def test_outputs_match(self, name):
        run = run_of(name)
        assert run.outputs_match, (
            run.unoptimized.output, run.ompdart.output, run.expert.output
        )

    def test_output_nonempty(self, name):
        assert run_of(name).unoptimized.output.strip()

    def test_tool_reduces_transfer(self, name):
        run = run_of(name)
        assert run.ompdart.stats.total_bytes < run.unoptimized.stats.total_bytes
        assert run.ompdart.stats.total_calls < run.unoptimized.stats.total_calls

    def test_tool_not_slower_than_unoptimized(self, name):
        run = run_of(name)
        assert run.speedup_x >= 1.0

    def test_tool_at_least_as_good_as_expert(self, name):
        # Paper: "For each application, the mappings were always at
        # least as good as the expert implementations."
        run = run_of(name)
        assert run.ompdart.stats.total_bytes <= run.expert.stats.total_bytes
        assert run.ompdart.stats.total_calls <= run.expert.stats.total_calls

    def test_transformed_source_contains_no_raw_kernels_without_region(self, name):
        run = run_of(name)
        assert run.transform.directive_count() >= 1


class TestQualitativeResults:
    def test_accuracy_identical_to_expert(self):
        run = run_of("accuracy")
        assert run.ompdart.stats == run.expert.stats

    def test_ace_identical_to_expert(self):
        run = run_of("ace")
        assert run.ompdart.stats.total_bytes == run.expert.stats.total_bytes
        assert run.ompdart.stats.total_calls == run.expert.stats.total_calls

    def test_ace_order_of_magnitude(self):
        run = run_of("ace")
        assert run.transfer_reduction_x > 500  # paper: 1010x

    def test_backprop_update_hoisted_before_host_loops(self):
        run = run_of("backprop")
        out = run.transform.output_source
        upd = out.index("target update from(partial_sum)")
        assert upd < out.index("for (int j = 1; j <= HID; j++)")

    def test_backprop_factor_two(self):
        run = run_of("backprop")
        assert 1.5 < run.transfer_reduction_x < 3.0  # paper: 2x

    def test_bfs_uses_updates_not_map(self):
        run = run_of("bfs")
        out = run.transform.output_source
        assert "map(alloc: stop)" in out
        assert "update to(stop)" in out
        assert "update from(stop)" in out
        # expert used a single map clause: equivalent outcome
        assert run.ompdart.stats.total_calls == run.expert.stats.total_calls

    def test_clenergy_maps_overlooked_struct(self):
        run = run_of("clenergy")
        assert "dim" in [m.var for m in run.transform.plans[0].maps]
        assert run.call_reduction_vs_expert > 0.5  # paper: 66%
        # small struct: byte delta stays small vs total
        delta = run.expert.stats.total_bytes - run.ompdart.stats.total_bytes
        assert delta < run.unoptimized.stats.total_bytes * 0.05

    @pytest.mark.parametrize("name,floor", [
        ("hotspot", 0.25), ("nw", 0.25), ("xsbench", 0.30),
    ])
    def test_firstprivate_call_reductions(self, name, floor):
        run = run_of(name)
        fp_vars = {
            v for spec in run.transform.plans[0].firstprivates
            for v in spec.variables
        }
        assert fp_vars, "tool should firstprivate read-only scalars"
        assert run.call_reduction_vs_expert >= floor

    def test_lulesh_beats_expert(self):
        run = run_of("lulesh")
        stats_t, stats_e = run.ompdart.stats, run.expert.stats
        assert stats_e.h2d_bytes / stats_t.h2d_bytes > 4  # paper: 7.4x
        assert stats_e.d2h_bytes / stats_t.d2h_bytes > 3  # paper: 5.1x
        reduction = 1 - stats_t.total_bytes / stats_e.total_bytes
        assert reduction > 0.7  # paper: ~85%
        assert stats_t.speedup_over(stats_e) > 1.3  # paper: 1.6x

    def test_lulesh_tool_inserts_no_in_loop_updates(self):
        run = run_of("lulesh")
        assert not run.transform.plans[0].updates

    def test_xsbench_factor_twenty(self):
        run = run_of("xsbench")
        assert 15 < run.transfer_reduction_x < 30  # paper: 20x


class TestComplexityMetrics:
    def test_kernel_counts_match_paper(self):
        # Paper Table IV kernel counts.
        expected = {
            "accuracy": 1, "ace": 6, "backprop": 2, "bfs": 2,
            "clenergy": 2, "hotspot": 1, "lulesh": 15, "nw": 2, "xsbench": 1,
        }
        for name, kernels in expected.items():
            bench = get_benchmark(name)
            metrics = analyze_complexity(bench.unoptimized_source(), name)
            assert metrics.kernels == kernels, name

    def test_lulesh_has_most_variables(self):
        counts = {}
        for name in BENCHMARK_ORDER:
            bench = get_benchmark(name)
            counts[name] = analyze_complexity(
                bench.unoptimized_source(), name
            ).mapped_variables
        assert max(counts, key=counts.get) == "lulesh"
        assert counts["lulesh"] >= 40

    def test_formula(self):
        from repro.suite import possible_mappings

        # Paper's accuracy row: 1 kernel, 37 lines, 5 vars -> 297.
        assert possible_mappings(1, 5, 37) == 297
